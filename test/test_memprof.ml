(* Memory observability: Memtrace recording, the Residency ledger, and
   the Memprof report that cross-checks them. *)

module Mt = Elk_sim.Memtrace
module Mp = Elk_analyze.Memprof
module Rd = Elk.Residency
module P = Elk_partition.Partition
module A = Elk_arch.Arch

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule

let result = lazy (Elk_sim.Sim.run ~mem:true (ctx ()) (sched ()))
let report = lazy (Mp.analyze (ctx ()) (sched ()) (Lazy.force result))

let capacity () = A.usable_sram_per_core (P.ctx_chip (ctx ()))
let cores () = (P.ctx_chip (ctx ())).A.cores

(* Recording is opt-in and pure bookkeeping: off-mode runs carry no
   record, and the simulated timeline is identical either way. *)
let test_off_by_default () =
  let r = Elk_sim.Sim.run ~mem:false (ctx ()) (sched ()) in
  Alcotest.(check bool) "no record" true (r.Elk_sim.Sim.mem = None)

let test_zero_cost () =
  let r_off = Elk_sim.Sim.run ~mem:false (ctx ()) (sched ()) in
  let r_on = Lazy.force result in
  Tu.check_float "total identical" r_off.Elk_sim.Sim.total
    r_on.Elk_sim.Sim.total;
  Alcotest.(check bool) "record present" true (r_on.Elk_sim.Sim.mem <> None)

(* The memory invariants, as `elk mem` enforces them. *)
let test_check_passes () =
  match Mp.check (Lazy.force report) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "check failed: %s" m

(* The static ledger must bound the dynamic replay: every byte the
   simulator holds was reserved by the liveness replay first. *)
let test_static_bounds_dynamic () =
  let rep = Lazy.force report in
  Alcotest.(check bool) "static >= dynamic" true
    (rep.Mp.static_high_water +. 1e-6 >= rep.Mp.dyn_high_water)

(* Core 0 holds every buffer (preloads broadcast to all cores, execute
   footprints start at core 0), so its occupancy is pointwise maximal. *)
let test_core0_pointwise_max () =
  let m = Option.get (Lazy.force result).Elk_sim.Sim.mem in
  let hw0 = Mt.core_high_water m 0 in
  for c = 1 to Mt.cores m - 1 do
    Alcotest.(check bool) "core 0 bounds" true (Mt.core_high_water m c <= hw0 +. 1e-9)
  done

let test_chip_peak_consistent () =
  let m = Option.get (Lazy.force result).Elk_sim.Sim.mem in
  Alcotest.(check bool) "chip peak <= cores x per-core peak" true
    (Mt.chip_high_water m
    <= (Mt.high_water m *. float_of_int (Mt.cores m)) +. 1e-6)

(* Wasted residency integrals are non-negative and match the recorded
   timestamps. *)
let test_waste_nonnegative () =
  let m = Option.get (Lazy.force result).Elk_sim.Sim.mem in
  for op = 0 to Mt.num_ops m - 1 do
    Alcotest.(check bool) "pre >= 0" true (Mt.pre_use_waste m op >= 0.);
    Alcotest.(check bool) "post >= 0" true (Mt.post_use_waste m op >= 0.);
    let om = Mt.op_mem m op in
    Tu.check_close ~eps:1e-3 "pre formula"
      (om.Mt.m_preload_bytes *. float_of_int (Mt.cores m)
      *. Float.max 0. (om.Mt.m_first_use -. om.Mt.m_deliver))
      (Mt.pre_use_waste m op)
  done

(* Occupancy change points are chronological with duplicate times
   collapsed, and the series ends drained (all buffers released). *)
let test_occupancy_shape () =
  let m = Option.get (Lazy.force result).Elk_sim.Sim.mem in
  let occ = Mt.occupancy m ~core:0 in
  Alcotest.(check bool) "nonempty" true (occ <> []);
  let rec mono = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing times" true (mono occ);
  let _, last = List.nth occ (List.length occ - 1) in
  Tu.check_close ~eps:1e-6 "drains to zero" 0. last

(* The static ledger: one preload + one execute buffer per operator,
   sane lifetimes, and a high water equal to the max step usage. *)
let test_ledger_shape () =
  let s = sched () in
  let ledger = Rd.of_schedule ~capacity:(capacity ()) ~cores:(cores ()) s in
  let n = Array.length s.Elk.Schedule.entries in
  Alcotest.(check int) "hbm rows" n (List.length ledger.Rd.hbm);
  List.iter
    (fun (b : Rd.buffer) ->
      Alcotest.(check bool) "lifetime ordered" true
        (b.Rd.alloc_step <= b.Rd.first_use
        && b.Rd.first_use <= b.Rd.last_use
        && b.Rd.last_use <= b.Rd.free_step);
      Alcotest.(check bool) "bytes nonneg" true (b.Rd.bytes >= 0.))
    ledger.Rd.buffers;
  let usage = Rd.step_usage s in
  let max_usage = Array.fold_left Float.max 0. usage in
  Tu.check_close ~eps:1e-6 "high water = max step usage" max_usage
    ledger.Rd.high_water;
  List.iter
    (fun h ->
      Alcotest.(check bool) "hbm row sane" true
        (h.Rd.h_bytes >= 0. && h.Rd.h_moves >= 0 && h.Rd.h_reuse_distance >= 0))
    ledger.Rd.hbm

let test_issued_counts_monotone () =
  let s = sched () in
  let issued = Rd.issued_counts s in
  let n = Array.length issued in
  for i = 1 to n - 1 do
    Alcotest.(check bool) "monotone" true (issued.(i) >= issued.(i - 1))
  done;
  Alcotest.(check int) "all issued at the end" n issued.(n - 1)

(* The JSON snapshot is deterministic: two independent simulations of
   the same schedule serialize to the same bytes. *)
let test_json_deterministic () =
  let mk () =
    let r = Elk_sim.Sim.run ~mem:true (ctx ()) (sched ()) in
    Mp.to_json ~top:6 (Mp.analyze (ctx ()) (sched ()) r)
  in
  Alcotest.(check string) "byte-identical" (mk ()) (mk ())

let test_analyze_requires_record () =
  let r = Elk_sim.Sim.run ~mem:false (ctx ()) (sched ()) in
  Alcotest.check_raises "needs record"
    (Invalid_argument
       "Memprof.analyze: simulator run has no memory record (run with \
        ~mem:true or ELK_SIM_MEM=1)")
    (fun () -> ignore (Mp.analyze (ctx ()) (sched ()) r))

(* Allocation failures carry a diagnosis: the offending operator, the
   demand and the capacity — and the option-returning wrapper stays
   behaviorally identical. *)
let test_alloc_error_diagnosis () =
  let g = Lazy.force Tu.tiny_llama_chip_graph in
  let exec_op = Elk_model.Graph.get g 2 in
  let tiny = 64. in
  (match Elk.Alloc.allocate_or_error (ctx ()) ~capacity:tiny ~exec_op ~window:[] with
  | Ok _ -> Alcotest.fail "expected allocation failure at 64 B/core"
  | Error msg ->
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        nl = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message names the operator: %s" msg)
        true
        (has exec_op.Elk_model.Graph.op.Elk_tensor.Opspec.name);
      Alcotest.(check bool) "message carries the capacity" true (has "B/core"));
  Alcotest.(check bool) "wrapper agrees" true
    (Elk.Alloc.allocate (ctx ()) ~capacity:tiny ~exec_op ~window:[] = None)

let test_alloc_ok_roundtrip () =
  let g = Lazy.force Tu.tiny_llama_chip_graph in
  let exec_op = Elk_model.Graph.get g 2 in
  let cap = capacity () in
  match Elk.Alloc.allocate_or_error (ctx ()) ~capacity:cap ~exec_op ~window:[] with
  | Error m -> Alcotest.failf "expected success at full capacity: %s" m
  | Ok _ ->
      Alcotest.(check bool) "wrapper agrees" true
        (Elk.Alloc.allocate (ctx ()) ~capacity:cap ~exec_op ~window:[] <> None)

(* -- Address intervals: Alloc.overlaps half-open semantics. -- *)

let mk_alloc ?(op = 0) ?(kind = Rd.Preload) base size =
  { Elk.Alloc.a_op = op; a_kind = kind; a_base = base; a_size = size }

let test_overlaps_half_open () =
  let ov a b = Elk.Alloc.overlaps a b in
  Alcotest.(check bool) "touching [0,4)/[4,8)" false
    (ov (mk_alloc 0. 4.) (mk_alloc 4. 4.));
  Alcotest.(check bool) "touching, swapped" false
    (ov (mk_alloc 4. 4.) (mk_alloc 0. 4.));
  Alcotest.(check bool) "zero-size at the boundary" false
    (ov (mk_alloc 4. 0.) (mk_alloc 0. 4.));
  Alcotest.(check bool) "zero-size inside a live interval" false
    (ov (mk_alloc 0. 4.) (mk_alloc 2. 0.));
  Alcotest.(check bool) "two zero-size at the same base" false
    (ov (mk_alloc 1. 0.) (mk_alloc 1. 0.));
  Alcotest.(check bool) "partial overlap" true
    (ov (mk_alloc 0. 100.) (mk_alloc 50. 100.));
  Alcotest.(check bool) "containment" true
    (ov (mk_alloc 0. 100.) (mk_alloc 25. 10.));
  Alcotest.(check bool) "identical intervals" true
    (ov (mk_alloc 8. 8.) (mk_alloc 8. 8.));
  Alcotest.(check bool) "one byte past the seam" true
    (ov (mk_alloc 0. 5.) (mk_alloc 4. 4.))

(* -- Residency ledger edge cases. -- *)

(* Zero-byte buffers: an operator whose preload option carries no bytes
   contributes neither a ledger row nor an address interval, and its HBM
   row records zero moves. *)
let test_residency_zero_byte () =
  let s = sched () in
  let entries = Array.copy s.Elk.Schedule.entries in
  let victim = 1 in
  let e = entries.(victim) in
  entries.(victim) <-
    {
      e with
      Elk.Schedule.popt =
        {
          e.Elk.Schedule.popt with
          P.preload_space = 0.;
          hbm_device_bytes = 0.;
          noc_inject_bytes = 0.;
        };
    };
  let s' = { s with Elk.Schedule.entries = entries } in
  (match Elk.Schedule.validate s' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "mutated schedule invalid: %s" m);
  let ledger = Rd.of_schedule ~capacity:(capacity ()) ~cores:(cores ()) s' in
  Alcotest.(check bool) "no preload ledger row" false
    (List.exists
       (fun b -> b.Rd.op = victim && b.Rd.kind = Rd.Preload)
       ledger.Rd.buffers);
  let h = List.find (fun h -> h.Rd.h_op = victim) ledger.Rd.hbm in
  Alcotest.(check int) "zero HBM moves" 0 h.Rd.h_moves;
  Tu.check_float "zero HBM bytes" 0. h.Rd.h_bytes;
  let layout = Elk.Alloc.layout_of_schedule s' in
  Alcotest.(check bool) "no address interval" false
    (List.exists
       (fun a -> a.Elk.Alloc.a_op = victim && a.Elk.Alloc.a_kind = Rd.Preload)
       layout)

(* A preload issued in the window that overlaps the previous operator's
   execution is consumed the moment it lands: allocation, first use, last
   use and free step all coincide, and the HBM reuse distance collapses
   to zero. *)
let test_residency_freed_at_alloc () =
  let s = sched () in
  let n = Elk.Schedule.num_ops s in
  let victim = ref (-1) in
  for op = 1 to n - 1 do
    if s.Elk.Schedule.entries.(op).Elk.Schedule.popt.P.preload_space > 0. then
      victim := op
  done;
  if !victim < 0 then Alcotest.fail "schedule has no late preload buffer";
  let v = !victim in
  let order =
    Array.of_list (List.filter (fun id -> id <> v) (List.init n Fun.id) @ [ v ])
  in
  let windows = Array.make (n + 1) 0 in
  windows.(0) <- n - 1;
  windows.(v) <- windows.(v) + 1;
  let s' = { s with Elk.Schedule.order = order; windows } in
  (match Elk.Schedule.validate s' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "reordered schedule invalid: %s" m);
  let ledger = Rd.of_schedule ~capacity:(capacity ()) ~cores:(cores ()) s' in
  let b =
    List.find (fun b -> b.Rd.op = v && b.Rd.kind = Rd.Preload) ledger.Rd.buffers
  in
  Alcotest.(check int) "allocated at its own step" v b.Rd.alloc_step;
  Alcotest.(check int) "freed at the allocation step" b.Rd.alloc_step
    b.Rd.free_step;
  Alcotest.(check int) "first use = last use" b.Rd.first_use b.Rd.last_use;
  let h = List.find (fun h -> h.Rd.h_op = v) ledger.Rd.hbm in
  Alcotest.(check int) "zero reuse distance" 0 h.Rd.h_reuse_distance

(* Execute footprints live through the exchange tail: the static ledger
   frees them at their own step (never at the compute end), and the
   dynamic record releases them at the exchange end — the post-use waste
   integral spans exactly that tail. *)
let test_residency_exchange_tail () =
  let s = sched () in
  let ledger = Rd.of_schedule ~capacity:(capacity ()) ~cores:(cores ()) s in
  List.iter
    (fun b ->
      if b.Rd.kind = Rd.Exec then begin
        Alcotest.(check int) "freed at its own step" b.Rd.op b.Rd.free_step;
        Alcotest.(check int) "last use = free step" b.Rd.last_use b.Rd.free_step
      end)
    ledger.Rd.buffers;
  let m = Option.get (Lazy.force result).Elk_sim.Sim.mem in
  let tail_op = ref (-1) in
  for op = 0 to Mt.num_ops m - 1 do
    let om = Mt.op_mem m op in
    if
      !tail_op < 0
      && om.Mt.m_exec_bytes > 0.
      && om.Mt.m_release > om.Mt.m_tail_start +. 1e-9
    then tail_op := op
  done;
  if !tail_op < 0 then Alcotest.fail "no operator with an exchange tail";
  let op = !tail_op in
  let om = Mt.op_mem m op in
  let rel =
    Array.to_list (Mt.samples m)
    |> List.find (fun sm -> sm.Mt.s_op = op && sm.Mt.s_change = Mt.Release)
  in
  Tu.check_close ~eps:1e-9 "released at the exchange end, not compute end"
    om.Mt.m_release rel.Mt.s_t;
  Tu.check_close ~eps:1e-3 "post-use waste spans exactly the tail"
    (om.Mt.m_exec_bytes
    *. float_of_int om.Mt.m_exec_cores
    *. (om.Mt.m_release -. om.Mt.m_tail_start))
    (Mt.post_use_waste m op)

let suite =
  [
    Alcotest.test_case "mem recording off by default" `Quick test_off_by_default;
    Alcotest.test_case "recording does not perturb the timeline" `Quick
      test_zero_cost;
    Alcotest.test_case "memprof check passes" `Quick test_check_passes;
    Alcotest.test_case "static ledger bounds dynamic peak" `Quick
      test_static_bounds_dynamic;
    Alcotest.test_case "core 0 occupancy is pointwise max" `Quick
      test_core0_pointwise_max;
    Alcotest.test_case "chip peak consistent with per-core peak" `Quick
      test_chip_peak_consistent;
    Alcotest.test_case "wasted residency is non-negative" `Quick
      test_waste_nonnegative;
    Alcotest.test_case "occupancy points chronological and drained" `Quick
      test_occupancy_shape;
    Alcotest.test_case "static ledger lifetimes and high water" `Quick
      test_ledger_shape;
    Alcotest.test_case "issued window counts monotone" `Quick
      test_issued_counts_monotone;
    Alcotest.test_case "memprof JSON deterministic" `Quick
      test_json_deterministic;
    Alcotest.test_case "analyze requires a memory record" `Quick
      test_analyze_requires_record;
    Alcotest.test_case "allocation failure names the operator" `Quick
      test_alloc_error_diagnosis;
    Alcotest.test_case "allocate wrapper round-trips success" `Quick
      test_alloc_ok_roundtrip;
    Alcotest.test_case "address-interval overlap is half-open" `Quick
      test_overlaps_half_open;
    Alcotest.test_case "zero-byte buffers leave no residency trace" `Quick
      test_residency_zero_byte;
    Alcotest.test_case "preload freed at its allocation step" `Quick
      test_residency_freed_at_alloc;
    Alcotest.test_case "execute footprint lives through the exchange tail"
      `Quick test_residency_exchange_tail;
  ]
