The serve subcommand generates a seeded request workload, drives it
through the batching front-end, and prints the SLO report.  Every
number is simulated, so the report is fully deterministic.

  $ ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 8 --max-batch 4 --output 8 --rate 2000 \
  >   --slo-ttft 0.01 --slo-itl 0.001
  serving SLO report: poisson workload, seed 42
    8 requests in 5 batches over 0.005 s simulated (3 shapes compiled, 6 plan compiles)
    plan cache: 3 shapes resident, 0 evicted
    throughput 11768.6 tok/s, goodput 92.6% (63 useful / 5 padded)
  
  == latency ==
  metric      p50      p90      p99      mean     max      
  ---------------------------------------------------------
  ttft        0.85 ms  1.16 ms  1.22 ms  0.86 ms  1.23 ms  
  itl         0.09 ms  0.09 ms  0.09 ms  0.09 ms  0.09 ms  
  queue_wait  0.48 ms  0.70 ms  0.77 ms  0.43 ms  0.77 ms  
  
  SLO: ttft <= 10.00 ms, itl <= 1.00 ms -> attainment 100.0%
  
  queue depth over time (48 windows of 0.000112 s):
            :---:----+*_----##+     :+###+          




The SLO snapshot is byte-identical across repeated runs and across
worker counts: the whole pipeline runs on simulated time and a seeded
workload, so parallelism must not leak into the numbers.

  $ ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 6 --max-batch 4 --output 6 --rate 2000 --json-out a.json >/dev/null
  $ ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 6 --max-batch 4 --output 6 --rate 2000 --json-out b.json >/dev/null
  $ ELK_JOBS=4 ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 6 --max-batch 4 --output 6 --rate 2000 --json-out c.json >/dev/null
  $ cmp a.json b.json && cmp a.json c.json && echo deterministic
  deterministic

The snapshot opens with the workload identity and carries the
trace-diff-comparable core (total + segments), so it can be diffed
against a committed baseline.

  $ cut -c1-34 a.json
  {"workload":"poisson","seed":42,"r
  $ ../../bin/elk_cli.exe trace diff a.json b.json | head -2
  == trace diff: makespan 4228.4 -> 4228.4 us (+0.00%), dominant ttft_p99 -> ttft_p99 ==
  resource  old us  new us  delta us  of makespan  

A different seed shifts every arrival, so the report must change.

  $ ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 6 --max-batch 4 --output 6 --rate 2000 --seed 7 --json-out d.json >/dev/null
  $ cmp -s a.json d.json || echo differs
  differs

Bad arguments fail with a clean message, not a backtrace.

  $ ../../bin/elk_cli.exe serve -m llama2-13b --scale 16 --layer-factor 20 \
  >   --requests 4 --design ideal
  elk_cli serve: Serve.serve: Ideal has no executable plan
  [1]
