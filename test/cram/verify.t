A clean plan verifies silently: zero diagnostics from every rule, exit 0
even under --strict.

  $ ../../bin/elk_cli.exe verify -m dit-xl -b 2 --strict
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 15 rules over 29 ops

At the default batch the diffusion model carries two steps whose minimal
preload options still overflow the SRAM — the tolerated scheduler
fallback, reported as warnings.  Warnings keep exit 0 by default but are
promoted to exit 3 by --strict.

  $ ../../bin/elk_cli.exe verify -m dit-xl
  warning[mem.overcommit] op 3 step 3: 100230 B/core live (3974 B over per-core SRAM) even with minimal preload options; contention is charged downstream
  warning[mem.overcommit] op 16 step 16: 97122 B/core live (866 B over per-core SRAM) even with minimal preload options; contention is charged downstream
  dit-xl/8x10@4chips: 0 error(s), 2 warning(s), 0 info(s) — 15 rules over 29 ops

  $ ../../bin/elk_cli.exe verify -m dit-xl --strict > /dev/null
  [3]

--rules restricts the analyses: family prefixes select whole families.

  $ ../../bin/elk_cli.exe verify -m dit-xl -b 2 --rules num,bw
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 5 rules over 29 ops

Unknown rule tokens are rejected with the valid ids.

  $ ../../bin/elk_cli.exe verify -m dit-xl --rules nope 2>&1 | head -c 40; echo
  elk_cli: unknown rule(s) nope (valid: me
  $ ../../bin/elk_cli.exe verify -m dit-xl --rules nope > /dev/null 2>&1
  [2]

--rules help documents the registry.

  $ ../../bin/elk_cli.exe verify --rules help | awk '{print $1}' | head -9
  ==
  rule
  -------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------
  mem.capacity
  mem.overcommit
  mem.double-preload
  mem.use-before-preload
  mem.underfetch
  mem.overfetch

The JSON report is machine-readable and self-contained.

  $ ../../bin/elk_cli.exe verify -m dit-xl -b 2 --json-out report.json
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 15 rules over 29 ops
  wrote report to report.json
  $ grep -o '"model":"[^"]*"' report.json; grep -o '"errors":[0-9]*' report.json
  "model":"dit-xl/8x10@4chips"
  "errors":0
