The analyze subcommand prints the bottleneck report for a compiled plan.
All times are simulated, so the tables are fully deterministic.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --top 4
  == bottleneck summary: makespan 106.5 us, load imbalance 1.04x (max/mean busy) ==
  resource      critical-path us  share  if infinite (us)  saved  
  ----------------------------------------------------------------
  hbm           0.3               0.3%   106.2             0.3%   
  interconnect  29.1              27.3%  77.5              27.3%  
  compute       77.1              72.4%  29.4              72.4%  
  port          0.0               0.0%   106.5             0.0%   
  
  == bandwidth over time (binned) ==
  series        mean GB/s  peak GB/s  
  ------------------------------------
  HBM           9.94       82.86      
  interconnect  72.24      302.78     
  
  == top 4 cores by busy time (us) ==
  core  busy   compute  exchange  port  preload wait  idle  sum    
  -----------------------------------------------------------------
  6     102.1  75.8     26.3      0.0   3.1           1.3   106.5  
  0     102.1  75.8     26.3      0.0   3.1           1.3   106.5  
  7     102.1  75.8     26.3      0.0   3.1           1.3   106.5  
  9     102.0  75.7     26.3      0.0   3.1           1.4   106.5  
  
  == operator mix by dominant resource ==
  dominant      ops  critical-path us  share  
  --------------------------------------------
  hbm           0    0.3               0.3%   
  interconnect  1    29.1              27.3%  
  compute       28   77.1              72.4%  
  port          0    0.0               0.0%   
  
  == top 10 operators by critical-path span ==
  op  name           dominant  span us  hbm   interconnect  compute  port  
  -------------------------------------------------------------------------
  10  l0.ffn_up      compute   7.3      0.0%  42.7%         57.3%    0.0%  
  23  l1.ffn_up      compute   7.3      0.0%  42.7%         57.3%    0.0%  
  12  l0.ffn_down    compute   6.3      0.0%  33.6%         66.4%    0.0%  
  25  l1.ffn_down    compute   6.3      0.0%  33.6%         66.4%    0.0%  
  16  l1.qkv         compute   6.2      0.0%  43.2%         56.8%    0.0%  
  3   l0.qkv         compute   6.2      0.0%  43.2%         56.8%    0.0%  
  4   l0.attn_score  compute   4.3      0.0%  41.7%         58.3%    0.0%  
  17  l1.attn_score  compute   4.3      0.0%  41.7%         58.3%    0.0%  
  6   l0.attn_out    compute   4.1      0.0%  44.0%         56.0%    0.0%  
  19  l1.attn_out    compute   4.1      0.0%  44.0%         56.0%    0.0%  
  

The JSON export lands where asked and starts with the makespan.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out rep.json >/dev/null
  $ cut -c1-9 rep.json
  {"total":

The Ideal roofline has no schedule, so there is nothing to analyze.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 -d ideal
  elk_cli: the Ideal roofline has no schedule to analyze
  [1]
