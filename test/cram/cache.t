The compile cache is a pure accelerator: a warm compile — whether served
from the in-process stores or the on-disk store — emits a plan byte
identical to a cold one, and disabling the cache reproduces the same
bytes through the uncached pipeline.  Wall-clock compile time varies, so
drop it.

A cold compile populates the on-disk store named by ELK_COMPILE_CACHE_DIR.
(Pin the cache on: CI re-runs the suite with ELK_COMPILE_CACHE=0.)

  $ export ELK_COMPILE_CACHE=1
  $ export ELK_COMPILE_CACHE_DIR=$PWD/plancache
  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 \
  >   --save-plan plan-cold.json | sed '/compile time/d'
  model: dit-xl/8x10 on pod{4 x chip{64 cores, 98.30KB SRAM/core, all-to-all, link 5.50GB/s, HBM 173.91GB/s}, inter-chip 27.83GB/s}
  latency: 116.133us (on-chip 84.337us + all-reduce 31.795us)
  preload=209.5ns exec=79.260us overlap=4.868us interconnect=0.0ns
  hbm util: 2.6%  noc util: 24.5%  tflops: 2.02
  saved plan to plan-cold.json

  $ ls plancache | sed 's/elk-plan-[0-9a-f]*/elk-plan-<digest>/'
  elk-plan-<digest>.cache

A second process compiles warm from disk; the plan is byte-identical.

  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 \
  >   --save-plan plan-warm.json > /dev/null
  $ cmp plan-cold.json plan-warm.json && echo identical
  identical

--no-compile-cache bypasses every cache layer and still produces the
same bytes.

  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 --no-compile-cache \
  >   --save-plan plan-off.json > /dev/null
  $ cmp plan-cold.json plan-off.json && echo identical
  identical

So does the ELK_COMPILE_CACHE=0 environment escape hatch.

  $ ELK_COMPILE_CACHE=0 ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 \
  >   --save-plan plan-env.json > /dev/null
  $ cmp plan-cold.json plan-env.json && echo identical
  identical

A corrupt disk entry reads as a miss, never an error.

  $ for f in plancache/*.cache; do echo garbage > "$f"; done
  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 \
  >   --save-plan plan-recold.json > /dev/null
  $ cmp plan-cold.json plan-recold.json && echo identical
  identical
