Parallel compilation must be a pure speed knob: the plan picked with a
worker pool is byte-identical to the sequential one.  The final summary
line carries wall-clock compile time, so drop it.

  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 --jobs 1 \
  >   --save-plan plan-j1.json | sed '/compile time/d'
  model: dit-xl/8x10 on pod{4 x chip{64 cores, 98.30KB SRAM/core, all-to-all, link 5.50GB/s, HBM 173.91GB/s}, inter-chip 27.83GB/s}
  latency: 116.133us (on-chip 84.337us + all-reduce 31.795us)
  preload=209.5ns exec=79.260us overlap=4.868us interconnect=0.0ns
  hbm util: 2.6%  noc util: 24.5%  tflops: 2.02
  saved plan to plan-j1.json

  $ ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 --jobs 4 \
  >   --save-plan plan-j4.json | sed '/compile time/d'
  model: dit-xl/8x10 on pod{4 x chip{64 cores, 98.30KB SRAM/core, all-to-all, link 5.50GB/s, HBM 173.91GB/s}, inter-chip 27.83GB/s}
  latency: 116.133us (on-chip 84.337us + all-reduce 31.795us)
  preload=209.5ns exec=79.260us overlap=4.868us interconnect=0.0ns
  hbm util: 2.6%  noc util: 24.5%  tflops: 2.02
  saved plan to plan-j4.json

  $ cmp plan-j1.json plan-j4.json && echo identical
  identical

The pruned search still emits plans the static verifier accepts.

  $ ../../bin/elk_cli.exe verify -m dit-xl --scale 8 -b 2 --plan plan-j4.json
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 15 rules over 29 ops

The ELK_JOBS environment variable sizes the pool the same way.

  $ ELK_JOBS=3 ../../bin/elk_cli.exe compile -m dit-xl --scale 8 -b 2 \
  >   --save-plan plan-env.json > /dev/null && cmp plan-env.json plan-j1.json \
  >   && echo identical
  identical
