elk lint runs every verify rule plus the opt-in soundness families: the
happens-before race analysis and the interconnect deadlock analysis.  A
compiled plan proves clean on both deployed topologies — every
address-overlapping buffer pair is ordered by the happens-before DAG and
the channel-dependency graph of every communication phase is acyclic.

  $ ../../bin/elk_cli.exe lint -m dit-xl -b 2
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 19 rules over 29 ops

  $ ../../bin/elk_cli.exe lint -m dit-xl -b 2 --topology mesh
  dit-xl/8x10@4chips: 0 error(s), 0 warning(s), 0 info(s) — 19 rules over 29 ops

A deliberately racy plan: the generator compiles the default model,
records the allocator's address layout, then moves one late preload
issue into the first window — deleting an ordering edge the layout
relied on.  Lint flags every now-unordered overlapping pair with a
witness path and fails.

  $ ../gen_fixture.exe racy.plan > /dev/null
  $ ../../bin/elk_cli.exe lint --plan racy.plan --rules race,deadlock > report.txt
  [1]
  $ grep -l "witness:" report.txt
  report.txt

The races are real in the simulator's causal event DAG too: replaying
the plan with event recording confirms no dependency path orders any
flagged pair.

  $ ../../bin/elk_cli.exe lint --plan racy.plan --rules race --crosscheck \
  >   | grep -c "confirmed unordered"
  1

Reports are deterministic: byte-identical JSON and SARIF across runs and
across worker-domain counts, on both racy and clean plans.

  $ ../../bin/elk_cli.exe lint --plan racy.plan --json-out r1.json --sarif s1.sarif > /dev/null
  [1]
  $ ELK_JOBS=4 ../../bin/elk_cli.exe lint --plan racy.plan --json-out r2.json --sarif s2.sarif > /dev/null
  [1]
  $ cmp r1.json r2.json && cmp s1.sarif s2.sarif && echo deterministic
  deterministic

  $ ../../bin/elk_cli.exe lint -m dit-xl -b 2 --json-out c1.json > /dev/null
  $ ELK_JOBS=4 ../../bin/elk_cli.exe lint -m dit-xl -b 2 --json-out c2.json > /dev/null
  $ cmp c1.json c2.json && echo deterministic
  deterministic

Per-rule suppression: masking the race family leaves only clean rules,
so the racy plan passes again.

  $ ../../bin/elk_cli.exe lint --plan racy.plan --rules=-race,-mem > /dev/null

Promotion: --error raises a family to error severity, so its findings
fail the command (elk verify supports the same flag).

  $ ../../bin/elk_cli.exe verify -m dit-xl --error=mem > /dev/null
  [1]
