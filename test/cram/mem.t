The mem subcommand simulates with SRAM-residency recording on and
prints the memory report: high-water marks vs usable SRAM, wasted
residency, the static buffer-lifetime ledger and the HBM traffic
ledger.  All times are simulated, so the tables are fully
deterministic.

  $ ../../bin/elk_cli.exe mem -m dit-xl --scale 8 -b 2 --top 3
  == SRAM residency: dit-xl/8x10@4chips, makespan 106.5 us, 64 cores x 94.0 KB usable ==
  metric                           KB      vs capacity  
  ------------------------------------------------------
  dynamic high water / core        36.5    38.8%        
  static ledger high water / core  36.5    38.8%        
  chip peak (all cores)            2333.2  38.8%        
  
  == wasted residency: 28678.3 KB*us pre-use + 22973.9 KB*us exchange-tail (8.1% of capacity-time) ==
  operator     ops  KB/core  resident us  pre-use KB*us  tail KB*us  
  -------------------------------------------------------------------
  final_proj   1    2.2      62.5         8999.3         0.0         
  l1.ffn_up    1    1.3      50.8         4118.6         3640.6      
  l1.ffn_down  1    1.3      56.6         4587.2         1581.8      
  
  == HBM traffic ledger: 0.4 MB moved in 17 transfers ==
  op  name       MB moved  moves  reuse dist (steps)  
  ----------------------------------------------------
  1   l0.adaln   0.06      1      0                   
  14  l1.adaln   0.06      1      13                  
  10  l0.ffn_up  0.04      1      9                   
  
  SRAM occupancy over time (49 windows, peak 36.5 KB/core):
    ___ ===--.:=-:::###:=**-._+++--.-=::.:***.-++:__ 




The JSON snapshot is byte-identical across runs and worker counts:
everything in it derives from simulated time.

  $ ../../bin/elk_cli.exe mem -m dit-xl --scale 8 -b 2 --json-out a.json >/dev/null
  $ ../../bin/elk_cli.exe mem -m dit-xl --scale 8 -b 2 --json-out b.json >/dev/null
  $ cmp a.json b.json && echo identical
  identical
  $ ELK_JOBS=3 ../../bin/elk_cli.exe mem -m dit-xl --scale 8 -b 2 \
  >   --json-out c.json >/dev/null && cmp a.json c.json && echo identical
  identical

The snapshot opens with the Tracediff-comparable core, and diffing it
against itself is all zeros, exit 0.

  $ cut -c1-34 a.json
  {"model":"dit-xl/8x10@4chips","tot
  $ ../../bin/elk_cli.exe trace diff a.json a.json >/dev/null

Residency recording is pure bookkeeping: the simulated timeline must be
byte-identical with recording forced on.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out off.json >/dev/null
  $ ELK_SIM_MEM=1 ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out on.json >/dev/null
  $ cmp off.json on.json

The metrics sidecar carries the memory gauges.

  $ ../../bin/elk_cli.exe mem -m dit-xl --scale 8 -b 2 --metrics-out m.json >/dev/null
  $ grep -c elk_mem_dyn_high_water_bytes m.json
  1
