The noc subcommand simulates with per-link interconnect recording on
and prints the congestion report: hottest links with traffic-class
breakdown, the route-length histogram, and the dynamic-vs-static
cross-check against the schedule's communication.  All times are
simulated, so the tables are fully deterministic.

  $ ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 --top 3
  == interconnect: dit-xl/8x10@4chips on all-to-all, makespan 106.5 us, 132 links touched, 2440 transfers ==
  metric                      value                      
  -------------------------------------------------------
  preload bytes (MB)          0.67                       
  distribute bytes (MB)       1.60                       
  exchange bytes (MB)         4.66                       
  mean route length (links)   2.00                       
  busiest link (dynamic)      port_in(core 0) (20.7 us)  
  busiest link (static Load)  port_in(core 0) (20.7 us)  
  
  == hottest links (top 3 by busy time) ==
  link             GB/s  MB    preload  distribute  exchange  busy us  util   
  ----------------------------------------------------------------------------
  port_in(core 0)  5.5   0.11  9.6%     23.1%       67.3%     59.4     55.8%  
  port_in(core 1)  5.5   0.11  9.6%     23.1%       67.3%     59.4     55.8%  
  port_in(core 2)  5.5   0.11  9.6%     23.1%       67.3%     59.4     55.8%  
  
  == route length histogram ==
  hops  transfers  MB    
  -----------------------
  2     2440       6.93  
  
  port_in(core 0) utilization over time (48 windows, 55.8% busy):
    *#**####*#***#*#**# : _.  . = =  -._ .  + : _.  

On a 2D mesh the report adds a per-core heatmap of outgoing-link
utilization, exposing where in the fabric the traffic concentrates.

  $ ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 --topology mesh --top 2
  == interconnect: dit-xl/8x10@4chips on mesh 8x8, makespan 137.4 us, 194 links touched, 2520 transfers ==
  metric                      value                
  -------------------------------------------------
  preload bytes (MB)          0.40                 
  distribute bytes (MB)       3.91                 
  exchange bytes (MB)         4.44                 
  mean route length (links)   2.16                 
  busiest link (dynamic)      edge(3->2) (8.7 us)  
  busiest link (static Load)  edge(3->2) (8.7 us)  
  
  == hottest links (top 2 by busy time) ==
  link        GB/s  MB    preload  distribute  exchange  busy us  util   
  -----------------------------------------------------------------------
  edge(3->2)  22.0  0.18  27.3%    33.8%       38.8%     54.3     39.5%  
  edge(3->4)  22.0  0.18  27.3%    33.8%       38.8%     54.3     39.5%  
  
  == route length histogram ==
  hops  transfers  MB    
  -----------------------
  1     1252       7.31  
  2     68         0.02  
  3     102        0.04  
  4     136        0.05  
  5     136        0.05  
  6     136        0.05  
  7     138        0.05  
  8     292        0.96  
  9     136        0.05  
  10    69         0.03  
  11    34         0.01  
  12    1          0.01  
  14    20         0.13  
  
  link utilization heatmap (8x8 cores, peak 39.5% outgoing-link busy)
    |*_+##_+_|
    |+_=_=_=_|
    |=.-.-.-.|
    |-:-:-:-:|
    |:-:-:-:-|
    |.-.-.-.=|
    |_=_=_=_+|
    |_+_##+_*|
  
  edge(3->2) utilization over time (48 windows, 39.5% busy):
    :##_+-* **=#:##_+-*_*++* + __ _  __   _ _ _     

The JSON snapshot is byte-identical across runs and worker counts:
everything in it derives from simulated time.

  $ ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 --json-out a.json >/dev/null
  $ ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 --json-out b.json >/dev/null
  $ cmp a.json b.json && echo identical
  identical
  $ ELK_JOBS=3 ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 \
  >   --json-out c.json >/dev/null && cmp a.json c.json && echo identical
  identical

The snapshot opens with the Tracediff-comparable core, and diffing it
against itself is all zeros, exit 0.

  $ cut -c1-34 a.json
  {"model":"dit-xl/8x10@4chips","tot
  $ ../../bin/elk_cli.exe trace diff a.json a.json >/dev/null

Interconnect recording is pure bookkeeping: the simulated timeline must
be byte-identical with recording forced on.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out off.json >/dev/null
  $ ELK_SIM_NOC=1 ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out on.json >/dev/null
  $ cmp off.json on.json

The metrics sidecar carries the interconnect gauges.

  $ ../../bin/elk_cli.exe noc -m dit-xl --scale 8 -b 2 --metrics-out m.json >/dev/null
  $ grep -c elk_noc_busiest_link_busy_seconds m.json
  1
