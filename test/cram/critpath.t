The critpath subcommand simulates with causal event tracing on and
prints the critical path: classified segments, blame, and slack.
All times are simulated, so the tables are fully deterministic.

  $ ../../bin/elk_cli.exe critpath -m dit-xl --scale 8 -b 2 --top 4 --top-segments 4
  == critical path: makespan 106.5 us over 54 segments (133 events recorded) ==
  resource      critical us  share  
  ----------------------------------
  hbm           0.6          0.5%   
  interconnect  30.6         28.7%  
  compute       75.4         70.7%  
  port          0.0          0.0%   
  wait          0.0          0.0%   
  
  == top 4 critical segments by duration ==
  op  name         kind     resource  start us  dur us  share  
  -------------------------------------------------------------
  10  l0.ffn_up    compute  compute   35.9      4.2     3.9%   
  12  l0.ffn_down  compute  compute   46.6      4.2     3.9%   
  25  l1.ffn_down  compute  compute   95.4      4.2     3.9%   
  23  l1.ffn_up    compute  compute   84.8      4.2     3.9%   
  
  == top 4 operators by critical-path time (blame), with slack ==
  op  name         critical us  share  slack us  hbm  interconnect  compute  port  
  ---------------------------------------------------------------------------------
  10  l0.ffn_up    7.3          6.8%   0.0       0.0  3.1           4.2      0.0   
  23  l1.ffn_up    7.3          6.8%   0.0       0.0  3.1           4.2      0.0   
  12  l0.ffn_down  6.3          5.9%   0.0       0.0  2.1           4.2      0.0   
  25  l1.ffn_down  6.3          5.9%   0.0       0.0  2.1           4.2      0.0   
  

The JSON snapshot lands where asked and starts with the makespan.

  $ ../../bin/elk_cli.exe critpath -m dit-xl --scale 8 -b 2 --json-out cp.json >/dev/null
  $ cut -c1-9 cp.json
  {"total":

Recording the event DAG is pure bookkeeping: the simulated timeline it
feeds from must be byte-identical with recording forced on.

  $ ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out off.json >/dev/null
  $ ELK_SIM_EVENTS=1 ../../bin/elk_cli.exe analyze -m dit-xl --scale 8 -b 2 --json-out on.json >/dev/null
  $ cmp off.json on.json

trace diff of a snapshot against itself is all zeros and exits 0.

  $ ../../bin/elk_cli.exe trace diff cp.json cp.json >/dev/null

A snapshot whose makespan and a segment grew past the threshold makes
the diff exit 1 and name the regressed entries.

  $ cat > old.json <<'EOF'
  > {"total":100e-6,"dominant":"compute",
  > "resource_seconds":{"compute":80e-6,"hbm":20e-6},
  > "segments":[{"name":"a","kind":"compute","resource":"compute","dur":80e-6},
  >             {"name":"b","kind":"hbm-read","resource":"hbm","dur":20e-6}]}
  > EOF
  $ cat > new.json <<'EOF'
  > {"total":112e-6,"dominant":"compute",
  > "resource_seconds":{"compute":92e-6,"hbm":20e-6},
  > "segments":[{"name":"a","kind":"compute","resource":"compute","dur":92e-6},
  >             {"name":"b","kind":"hbm-read","resource":"hbm","dur":20e-6}]}
  > EOF
  $ ../../bin/elk_cli.exe trace diff old.json new.json --threshold 0.05 >/dev/null
  [1]

An unparseable snapshot is a usage error (exit 2), not a regression.

  $ echo 'not json' > garbage.json
  $ ../../bin/elk_cli.exe trace diff old.json garbage.json
  elk_cli: new snapshot: invalid JSON: expected 'null' at offset 0
  [2]

The metrics sidecar lands beside the snapshot: simulator counters and
the critpath gauges in one Prometheus-style JSON dump.

  $ ../../bin/elk_cli.exe critpath -m dit-xl --scale 8 -b 2 --metrics-out cm.json >/dev/null
  $ grep -c '"elk_sim_runs_total"' cm.json
  1
