The profile subcommand aggregates compiler spans into a per-phase table.
Wall-clock durations vary run to run, so keep only the first column
(phase / counter names) and squeeze the separator rule.  The compile
cache contributes a span and counters, so pin it on regardless of the
ambient ELK_COMPILE_CACHE (CI re-runs the suite with it set to 0).

  $ export ELK_COMPILE_CACHE=1
  $ ../../bin/elk_cli.exe profile -m dit-xl --scale 8 -b 2 | awk '{print $1}' | tr -s '-'
  ==
  phase
  -
  compile
  compile.cache
  shard
  order-gen
  schedule
  allocate
  timeline-eval
  
  ==
  counter
  -
  elk_compile_cache_misses_total
  elk_compile_orders_tried_total
  elk_scheduler_runs_total
  elk_compile_orders_pruned_total
  


