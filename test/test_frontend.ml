(* Serving front-end + SLO report: per-request lifecycle ordering, FCFS
   batch structure, plan-cache behavior, time-series tiling, and the
   determinism of the whole pipeline under different jobs counts. *)

open Elk_serve
module B = Elk_baselines.Baselines

let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20

let spec =
  {
    Workload.arrival = Workload.Poisson { rate = 400. };
    prompt = Workload.Uniform { lo = 16; hi = 96 };
    output = Workload.Uniform { lo = 2; hi = 10 };
  }

let result =
  lazy
    (let reqs = Workload.generate ~seed:21 ~n:12 spec in
     Frontend.run ~design:B.Elk_dyn ~max_batch:4 (Elk_dse.Dse.env ()) cfg reqs)

let test_lifecycle_order () =
  let r = Lazy.force result in
  Alcotest.(check int) "all requests served" 12 (List.length r.Frontend.requests);
  List.iter
    (fun (t : Frontend.req_trace) ->
      let a = t.req.Workload.arrival_s in
      Alcotest.(check bool) "arrival <= admitted" true (a <= t.Frontend.admitted);
      Alcotest.(check bool) "admitted < prefill_end" true
        (t.Frontend.admitted < t.Frontend.prefill_end);
      Alcotest.(check bool) "prefill_end < first_token" true
        (t.Frontend.prefill_end < t.Frontend.first_token);
      Alcotest.(check bool) "first_token <= finish" true
        (t.Frontend.first_token <= t.Frontend.finish);
      Alcotest.(check bool) "finish within makespan" true
        (t.Frontend.finish <= r.Frontend.makespan +. 1e-12);
      Alcotest.(check int) "one itl per extra token"
        (t.Frontend.req.Workload.output_len - 1)
        (List.length t.Frontend.itls);
      Alcotest.(check bool) "ttft positive" true (Frontend.ttft t > 0.);
      Alcotest.(check bool) "queue wait nonnegative" true
        (Frontend.queue_wait t >= 0.))
    r.Frontend.requests

let test_fcfs_batches () =
  let r = Lazy.force result in
  (* Batches hold the engine exclusively and in formation order. *)
  let rec walk = function
    | (a : Frontend.batch_trace) :: (b :: _ as rest) ->
        Alcotest.(check bool) "no overlap" true (a.Frontend.b_end <= b.Frontend.b_formed +. 1e-12);
        walk rest
    | _ -> ()
  in
  walk r.Frontend.batches;
  List.iter
    (fun (b : Frontend.batch_trace) ->
      Alcotest.(check bool) "batch within max_batch" true (b.Frontend.b_size <= 4);
      Alcotest.(check bool) "bucket covers size" true
        (b.Frontend.b_bucket >= b.Frontend.b_size);
      Alcotest.(check bool) "live starts at size" true
        (b.Frontend.b_live.(0) = b.Frontend.b_size);
      Alcotest.(check int) "steps cover longest member" b.Frontend.b_tokens
        (Array.length b.Frontend.b_step_ends))
    r.Frontend.batches;
  (* FCFS: requests are admitted in arrival (= id) order. *)
  let rec admitted_mono = function
    | (a : Frontend.req_trace) :: (b :: _ as rest) ->
        Alcotest.(check bool) "admission order follows arrival order" true
          (a.Frontend.admitted <= b.Frontend.admitted +. 1e-12);
        admitted_mono rest
    | _ -> ()
  in
  admitted_mono r.Frontend.requests

let test_plan_cache () =
  let r = Lazy.force result in
  Alcotest.(check bool) "some shapes computed" true (r.Frontend.distinct_shapes > 0);
  Alcotest.(check bool) "cache reuses shapes" true
    (r.Frontend.distinct_shapes <= List.length r.Frontend.batches)

let test_timeseries_tiling () =
  let r = Lazy.force result in
  let ts = Frontend.timeseries r in
  List.iter
    (fun name ->
      match Elk_obs.Timeseries.check_tiling ts ~horizon:r.Frontend.makespan name with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    (Elk_obs.Timeseries.names ts);
  Alcotest.(check bool) "queue depth recorded" true
    (Elk_obs.Timeseries.events_recorded ts "queue_depth" > 0);
  (* every generated token lands in the completed counter *)
  let total =
    List.fold_left
      (fun a p -> a +. p.Elk_obs.Timeseries.sum)
      0.
      (Elk_obs.Timeseries.points ts ~horizon:r.Frontend.makespan "tokens_completed")
  in
  Alcotest.(check (float 1e-9)) "tokens completed = workload tokens"
    (float_of_int
       (Workload.total_output_tokens
          (List.map (fun t -> t.Frontend.req) r.Frontend.requests)))
    total

let test_slo_report () =
  let r = Lazy.force result in
  let rp = Slo.of_result ~slo_ttft:10. ~workload:"poisson" ~seed:21 r in
  Alcotest.(check int) "request count" 12 rp.Slo.n_requests;
  Alcotest.(check bool) "goodput in (0,1]" true
    (rp.Slo.goodput > 0. && rp.Slo.goodput <= 1.);
  Alcotest.(check bool) "percentiles ordered" true
    (rp.Slo.ttft.Slo.p50 <= rp.Slo.ttft.Slo.p99
    && rp.Slo.ttft.Slo.p99 <= rp.Slo.ttft.Slo.max);
  Alcotest.(check bool) "throughput positive" true (rp.Slo.tokens_per_second > 0.);
  (* a 10-second TTFT budget on a sub-second run: everything attains *)
  Alcotest.(check (option (float 1e-9))) "attainment" (Some 1.) rp.Slo.attainment;
  let no_slo = Slo.of_result ~workload:"poisson" ~seed:21 r in
  Alcotest.(check (option (float 1e-9))) "no target, no attainment" None
    no_slo.Slo.attainment;
  (* the snapshot parses and carries the trace-diffable core *)
  match Elk_obs.Jsonx.parse (Slo.to_json rp) with
  | Error m -> Alcotest.fail ("SLO JSON invalid: " ^ m)
  | Ok v ->
      (match Option.bind (Elk_obs.Jsonx.member "total" v) Elk_obs.Jsonx.to_float with
      | Some total ->
          Alcotest.(check (float 1e-6)) "total = makespan (rounded)"
            r.Frontend.makespan total
      | None -> Alcotest.fail "total missing");
      (match Elk_obs.Jsonx.member "segments" v with
      | Some (Elk_obs.Jsonx.Arr segs) ->
          Alcotest.(check int) "3 metrics x 5 kinds" 15 (List.length segs)
      | _ -> Alcotest.fail "segments missing")

let test_determinism_across_jobs () =
  let reqs = Workload.generate ~seed:77 ~n:6 spec in
  let run () =
    Slo.to_json
      (Slo.of_result ~workload:"poisson" ~seed:77
         (Frontend.run ~design:B.Elk_dyn ~max_batch:4 (Elk_dse.Dse.env ()) cfg reqs))
  in
  Elk_util.Pool.set_jobs 1;
  let a = run () in
  Elk_util.Pool.set_jobs 4;
  let b = run () in
  Alcotest.(check string) "SLO JSON identical across jobs counts" a b

let test_plan_cache_cap () =
  let reqs = Workload.generate ~seed:21 ~n:12 spec in
  let env = Elk_dse.Dse.env () in
  let full = Frontend.run ~design:B.Elk_dyn ~max_batch:4 env cfg reqs in
  let capped =
    Frontend.run ~design:B.Elk_dyn ~max_batch:4 ~plan_cache_cap:1 env cfg reqs
  in
  Alcotest.(check int) "uncapped run evicts nothing" 0
    full.Frontend.plan_cache_evictions;
  Alcotest.(check bool) "uncapped size = distinct shapes" true
    (full.Frontend.plan_cache_size = full.Frontend.distinct_shapes);
  Alcotest.(check bool) "capped size within cap" true
    (capped.Frontend.plan_cache_size <= 1);
  if capped.Frontend.distinct_shapes > 1 then
    Alcotest.(check bool) "cap of 1 forces evictions" true
      (capped.Frontend.plan_cache_evictions > 0);
  (* The cap changes only reuse, never results: every request timing is
     identical to the uncapped run. *)
  Alcotest.(check (float 1e-12)) "same makespan" full.Frontend.makespan
    capped.Frontend.makespan;
  List.iter2
    (fun (a : Frontend.req_trace) (b : Frontend.req_trace) ->
      Alcotest.(check (float 1e-12)) "same ttft" (Frontend.ttft a) (Frontend.ttft b);
      Alcotest.(check (float 1e-12)) "same finish" a.Frontend.finish
        b.Frontend.finish)
    full.Frontend.requests capped.Frontend.requests

(* serve --noc: with interconnect recording on, every batch carries the
   hottest link of its plans, the busiest-link gauge enters the series,
   and the lifecycle timestamps are identical to a run without it. *)
let test_noc_gauge () =
  let reqs = Workload.generate ~seed:21 ~n:6 spec in
  let env = Elk_dse.Dse.env () in
  let plain = Frontend.run ~design:B.Elk_dyn ~max_batch:4 env cfg reqs in
  let noc = Frontend.run ~design:B.Elk_dyn ~max_batch:4 ~noc:true env cfg reqs in
  Tu.check_float "makespan identical" plain.Frontend.makespan
    noc.Frontend.makespan;
  List.iter
    (fun (b : Frontend.batch_trace) ->
      Alcotest.(check bool) "busiest link named" true (b.Frontend.b_busiest_link <> "");
      Alcotest.(check bool) "link busy positive" true (b.Frontend.b_link_busy > 0.))
    noc.Frontend.batches;
  List.iter
    (fun (b : Frontend.batch_trace) ->
      Alcotest.(check string) "off-mode link empty" "" b.Frontend.b_busiest_link)
    plain.Frontend.batches;
  let ts = Frontend.timeseries ~noc:true noc in
  Alcotest.(check bool) "gauge present" true
    (List.mem "noc_busiest_link_busy" (Elk_obs.Timeseries.names ts));
  let rp =
    Slo.of_result ~noc:true ~workload:"poisson" ~seed:21 noc
  in
  Alcotest.(check bool) "slo report carries the gauge" true
    (List.mem "noc_busiest_link_busy" (Elk_obs.Timeseries.names rp.Slo.series))

let test_rejects_bad_input () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let env = Elk_dse.Dse.env () in
  let reqs = Workload.generate ~seed:1 ~n:3 spec in
  bad (fun () -> ignore (Frontend.run env cfg []));
  bad (fun () -> ignore (Frontend.run ~max_batch:0 env cfg reqs));
  bad (fun () -> ignore (Frontend.run ~plan_cache_cap:0 env cfg reqs));
  bad (fun () -> ignore (Frontend.run env cfg (List.rev reqs)))

let suite =
  [
    Alcotest.test_case "lifecycle order" `Quick test_lifecycle_order;
    Alcotest.test_case "fcfs batches" `Quick test_fcfs_batches;
    Alcotest.test_case "plan cache" `Quick test_plan_cache;
    Alcotest.test_case "plan cache cap" `Quick test_plan_cache_cap;
    Alcotest.test_case "timeseries tiling" `Quick test_timeseries_tiling;
    Alcotest.test_case "slo report" `Quick test_slo_report;
    Alcotest.test_case "determinism across jobs" `Quick
      test_determinism_across_jobs;
    Alcotest.test_case "noc busiest-link gauge" `Quick test_noc_gauge;
    Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
  ]
