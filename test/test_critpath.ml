open Elk_sim

(* Causal-DAG invariants (ISSUE 5).  The recorder in [Sim.run ~events:true]
   emits one event per simulated activity with its causal parent — the
   argmax of the start-time gate — so the backward walk in [Critpath]
   must tile the makespan exactly and CPM slack must be non-negative.
   Any violation means the recorder mis-identified a binding edge. *)

let result =
  lazy (Sim.run ~events:true (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let events_of (r : Sim.result) =
  match r.Sim.events with
  | Some ev -> ev
  | None -> Alcotest.fail "events requested but not recorded"

let summary = lazy (Critpath.extract (events_of (Lazy.force result)))

let test_disabled_by_default () =
  (* Recording is opt-in; the default run must not pay for it. *)
  let r = Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule) in
  Alcotest.(check bool) "no events" true (r.Sim.events = None)

let test_recording_does_not_perturb () =
  let off = Sim.run ~events:false (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule) in
  let on_ = Lazy.force result in
  Tu.check_float "same makespan" off.Sim.total on_.Sim.total;
  Array.iteri
    (fun o (a : Sim.op_trace) ->
      let b = on_.Sim.per_op.(o) in
      Tu.check_float "pre_end" a.Sim.pre_end b.Sim.pre_end;
      Tu.check_float "exe_end" a.Sim.exe_end b.Sim.exe_end)
    off.Sim.per_op

let test_dag_invariants () =
  let r = Lazy.force result in
  match Critpath.check (events_of r) ~total:r.Sim.total with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_path_identity () =
  let r = Lazy.force result in
  let s = Lazy.force summary in
  Tu.check_rel "summary total = makespan" ~tolerance:1e-9 r.Sim.total s.Critpath.total;
  let seg_sum =
    List.fold_left (fun a seg -> a +. seg.Critpath.s_dur) 0. s.Critpath.segments
  in
  Tu.check_rel "segments tile makespan" ~tolerance:1e-6 r.Sim.total seg_sum;
  let res_sum =
    List.fold_left (fun a (_, v) -> a +. v) 0. s.Critpath.resource_seconds
  in
  Tu.check_rel "resource seconds tile makespan" ~tolerance:1e-6 r.Sim.total res_sum

let test_critical_events_have_zero_slack () =
  let s = Lazy.force summary in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d on path has ~0 slack" id)
        true
        (Float.abs s.Critpath.slack.(id) <= 1e-6 *. Float.max 1. s.Critpath.total))
    s.Critpath.crit_ids

let test_op_slack_consistent () =
  let s = Lazy.force summary in
  Array.iteri
    (fun o sl ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d slack finite and nonneg" o)
        true
        (Float.is_finite sl && sl >= -1e-9);
      (* An operator with critical seconds must have ~zero min slack. *)
      if s.Critpath.op_crit.(o) > 1e-9 then
        Alcotest.(check bool)
          (Printf.sprintf "critical op %d has ~0 slack" o)
          true
          (sl <= 1e-6 *. Float.max 1. s.Critpath.total))
    s.Critpath.op_slack

(* Cross-check with [Elk_analyze]: the two layers answer different
   questions (attribution books every operator's span; the chain books
   only binding time), so dominants may legitimately differ when a
   pipelined resource hides behind overlapped executes — that divergence
   is the point of the causal trace.  What must ALWAYS hold, because both
   use the same Perfcore classification conventions:

   - chain compute/port seconds are a subset of the attributed
     compute/port totals (every critical compute segment is some
     operator's compute_len, which attribution also counts);
   - an exposed-wait-dominated attribution (HBM) cannot coexist with a
     chain that never touches the preload pipeline;
   - a compute-dominated chain forces a visible compute attribution. *)
let check_analyze_consistency name graph (r : Sim.result) (s : Critpath.summary) =
  let report = Elk_analyze.Analyze.analyze graph r in
  let a_share res =
    try List.assoc res report.Elk_analyze.Analyze.resource_totals with Not_found -> 0.
  in
  let c_share res =
    try List.assoc res s.Critpath.resource_seconds with Not_found -> 0.
  in
  let show () =
    Printf.sprintf "critpath: %s\n  analyze:  %s"
      (String.concat ", "
         (List.map
            (fun (r', v) -> Printf.sprintf "%s=%.3g" (Critpath.resource_name r') v)
            s.Critpath.resource_seconds))
      (String.concat ", "
         (List.map
            (fun (r', v) ->
              Printf.sprintf "%s=%.3g" (Elk_analyze.Analyze.resource_name r') v)
            report.Elk_analyze.Analyze.resource_totals))
  in
  let tol = 1e-6 *. Float.max 1e-12 s.Critpath.total in
  if c_share Critpath.Compute > a_share Elk_analyze.Analyze.Compute +. tol then
    Alcotest.failf "%s: chain compute exceeds attributed compute\n  %s" name (show ());
  if c_share Critpath.Port > a_share Elk_analyze.Analyze.Port +. tol then
    Alcotest.failf "%s: chain port exceeds attributed port\n  %s" name (show ());
  let a_max =
    List.fold_left
      (fun acc (_, v) -> Float.max acc v)
      0. report.Elk_analyze.Analyze.resource_totals
  in
  (match Critpath.dominant s with
  | Critpath.Compute ->
      if a_share Elk_analyze.Analyze.Compute < 0.4 *. a_max then
        Alcotest.failf "%s: compute-dominant chain but attribution disagrees\n  %s"
          name (show ())
  | Critpath.Hbm ->
      (* The chain's HBM reads are disjoint busy intervals of the HBM
         device, so a saturated chain needs a busy channel. *)
      if r.Sim.hbm_util < 0.35 *. (c_share Critpath.Hbm /. s.Critpath.total) then
        Alcotest.failf "%s: hbm-dominant chain but hbm_util only %.3g\n  %s" name
          r.Sim.hbm_util (show ())
  | _ -> ());
  (* And in the other direction: an attribution dominated by exposed
     preload waits means executes stalled on HBM, so the chain must
     route through the preload pipeline at those points. *)
  if
    a_share Elk_analyze.Analyze.Hbm >= 0.5 *. a_max
    && c_share Critpath.Hbm +. c_share Critpath.Interconnect
       < 0.5 *. a_share Elk_analyze.Analyze.Hbm
  then Alcotest.failf "%s: hbm-dominant attribution but chain avoids preloads\n  %s"
      name (show ())

let test_analyze_consistency () =
  let r = Lazy.force result in
  let g = (Lazy.force Tu.tiny_schedule).Elk.Schedule.graph in
  check_analyze_consistency "a2a" g r (Lazy.force summary)

(* Property sweep: scaled-down zoo models on both topologies.  CI runs
   the full-size models through `elk critpath`; here each config shrinks
   by 16x width so training + scheduling stays test-sized. *)
let zoo_cases =
  [
    ("llama2-13b", Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20);
    ("gemma2-27b", Elk_model.Zoo.scale Elk_model.Zoo.gemma2_27b ~factor:16 ~layer_factor:23);
    ("opt-30b", Elk_model.Zoo.scale Elk_model.Zoo.opt_30b ~factor:8 ~layer_factor:24);
    ("dit-xl", Elk_model.Zoo.scale Elk_model.Zoo.dit_xl ~factor:8 ~layer_factor:14);
  ]

let run_case ~topo ctx (name, cfg) =
  let phase =
    if cfg.Elk_model.Zoo.family = Elk_model.Zoo.Dit then
      Elk_model.Zoo.Decode { batch = 2; ctx = 1 }
    else Elk_model.Zoo.Decode { batch = 8; ctx = 128 }
  in
  let g = Elk.Sharding.shard_graph ~chips:4 (Elk_model.Zoo.build cfg phase) in
  let s = Elk.Scheduler.run ctx g in
  let r = Sim.run ~events:true ctx s in
  let ev = events_of r in
  let label = Printf.sprintf "%s/%s" name topo in
  (match Critpath.check ev ~total:r.Sim.total with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" label m);
  let s' = Critpath.extract ev in
  Tu.check_rel (label ^ ": path length = makespan") ~tolerance:1e-6 r.Sim.total
    s'.Critpath.total;
  check_analyze_consistency label g r s'

let test_zoo_a2a () =
  List.iter (run_case ~topo:"a2a" (Lazy.force Tu.default_ctx)) zoo_cases

let test_zoo_mesh () =
  List.iter (run_case ~topo:"mesh" (Lazy.force Tu.mesh_ctx)) zoo_cases

let test_mesh_invariants () =
  let mctx = Lazy.force Tu.mesh_ctx in
  let s = Elk.Scheduler.run mctx (Lazy.force Tu.tiny_llama_chip_graph) in
  let r = Sim.run ~events:true mctx s in
  (match Critpath.check (events_of r) ~total:r.Sim.total with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let g = s.Elk.Schedule.graph in
  check_analyze_consistency "mesh" g r (Critpath.extract (events_of r))

let suite =
  [
    ("critpath: disabled by default", `Quick, test_disabled_by_default);
    ("critpath: recording does not perturb timing", `Quick, test_recording_does_not_perturb);
    ("critpath: DAG invariants", `Quick, test_dag_invariants);
    ("critpath: path tiles makespan", `Quick, test_path_identity);
    ("critpath: critical events zero slack", `Quick, test_critical_events_have_zero_slack);
    ("critpath: op slack consistent", `Quick, test_op_slack_consistent);
    ("critpath: consistent with analyze", `Quick, test_analyze_consistency);
    ("critpath: zoo sweep (a2a)", `Slow, test_zoo_a2a);
    ("critpath: zoo sweep (mesh)", `Slow, test_zoo_mesh);
    ("critpath: mesh invariants", `Slow, test_mesh_invariants);
  ]
