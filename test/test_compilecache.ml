(* Warm/cold determinism of the incremental compile cache: whole-plan
   hits, suffix-resumed inductions, reorder memo hits, the on-disk store
   and the disabled path must all produce plans byte-identical to a cold
   compile — the cache is a pure accelerator, never a semantic change. *)

open Elk_model

let options = { Elk.Compile.default_options with max_orders = 8 }

let export (c : Elk.Compile.t) = Elk.Planio.export c.Elk.Compile.schedule
let compile ?(options = options) ctx ~pod g = Elk.Compile.compile ~options ctx ~pod g

(* Run [f] against a freshly reset, enabled cache; restore the previous
   enablement (and a cold cache) afterwards so other suites are
   unaffected whatever order Alcotest runs them in. *)
let with_fresh_cache f =
  let was = Elk.Compilecache.enabled () in
  Elk.Compilecache.set_enabled true;
  Elk.Compilecache.reset ();
  Fun.protect
    ~finally:(fun () ->
      Elk.Compilecache.reset ();
      Elk.Compilecache.set_enabled was)
    f

let llama = Zoo.scale Zoo.llama2_13b ~factor:16 ~layer_factor:20
let decode ctx = Zoo.build llama (Zoo.Decode { batch = 16; ctx })

let test_cold_warm_identical () =
  with_fresh_cache (fun () ->
      let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
      let g = Lazy.force Tu.tiny_llama in
      let cold = compile ctx ~pod g in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check int) "one miss" 1 s.Elk.Compilecache.plan_misses;
      Alcotest.(check int) "no hits yet" 0 s.Elk.Compilecache.plan_hits;
      let warm = compile ctx ~pod g in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check int) "one hit" 1 s.Elk.Compilecache.plan_hits;
      Alcotest.(check string) "warm plan byte-identical" (export cold) (export warm);
      Alcotest.(check int) "same orders tried" cold.Elk.Compile.orders_tried
        warm.Elk.Compile.orders_tried;
      (* After eviction (reset drops every in-memory entry) the recompile
         is cold again and must still produce the same bytes. *)
      Elk.Compilecache.reset ();
      let recold = compile ctx ~pod g in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check int) "cold again" 1 s.Elk.Compilecache.plan_misses;
      Alcotest.(check string) "post-eviction plan byte-identical" (export cold)
        (export recold))

(* The serving ctx-bucket ladder, both topologies: warm compiles (second
   pass over the same buckets) and cache-off compiles must match the
   first pass byte for byte. *)
let test_ladder_cache_off_parity () =
  let buckets = [ 64; 128; 192 ] in
  List.iter
    (fun (label, ctx, pod) ->
      let pod = Lazy.force pod in
      let first, second =
        with_fresh_cache (fun () ->
            ( List.map (fun b -> export (compile ctx ~pod (decode b))) buckets,
              List.map (fun b -> export (compile ctx ~pod (decode b))) buckets ))
      in
      let off =
        let was = Elk.Compilecache.enabled () in
        Elk.Compilecache.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Elk.Compilecache.set_enabled was)
          (fun () -> List.map (fun b -> export (compile ctx ~pod (decode b))) buckets)
      in
      List.iteri
        (fun i b ->
          let name fmt = Printf.sprintf "%s ctx=%d: %s" label b fmt in
          Alcotest.(check string) (name "warm = cold") (List.nth first i)
            (List.nth second i);
          Alcotest.(check string) (name "cache off = cache on") (List.nth first i)
            (List.nth off i))
        buckets)
    [
      ("llama/a2a", Lazy.force Tu.default_ctx, Tu.default_pod);
      ("llama/mesh", Lazy.force Tu.mesh_ctx, Tu.mesh_pod);
    ]

(* Suffix resume at the scheduler level: two decode graphs of the same
   model differ only in their attention operators (ctx bucket), so a
   second induction under the same order re-enters at the last dirty
   operator — and must reproduce the cold schedule exactly. *)
let test_suffix_resume_byte_identical () =
  with_fresh_cache (fun () ->
      let ctx = Lazy.force Tu.default_ctx in
      let cg64 = Elk.Sharding.shard_graph ~chips:4 (decode 64) in
      let cg128 = Elk.Sharding.shard_graph ~chips:4 (decode 128) in
      let cold128 = Elk.Scheduler.run ctx cg128 in
      Elk.Compilecache.reset ();
      let (_ : Elk.Schedule.t) = Elk.Scheduler.run ctx cg64 in
      let resumed128 = Elk.Scheduler.run ctx cg128 in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check bool) "resume fired" true (s.Elk.Compilecache.sched_resumes > 0);
      Alcotest.(check string) "resumed schedule byte-identical"
        (Elk.Planio.export cold128)
        (Elk.Planio.export resumed128))

(* Reorder memo: two compiles that differ only in max_preload share the
   candidate-order computation (the memo key ignores scheduler options)
   while missing the whole-plan cache. *)
let test_reorder_memo_hits () =
  with_fresh_cache (fun () ->
      let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
      let g = Lazy.force Tu.tiny_llama in
      let a = compile ~options ctx ~pod g in
      let b =
        compile ~options:{ options with Elk.Compile.max_preload = 16 } ctx ~pod g
      in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check int) "both compiles missed the plan cache" 2
        s.Elk.Compilecache.plan_misses;
      Alcotest.(check bool) "reorder memo hit" true
        (s.Elk.Compilecache.reorder_hits > 0);
      Alcotest.(check bool) "plans computed" true
        (Elk.Compile.latency a > 0. && Elk.Compile.latency b > 0.))

(* Warm and cold plans are identical whatever the jobs count. *)
let test_jobs_parity () =
  let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
  let buckets = [ 64; 128 ] in
  let ladder jobs =
    Elk_util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Elk_util.Pool.set_jobs 1)
      (fun () ->
        with_fresh_cache (fun () ->
            List.map (fun b -> export (compile ctx ~pod (decode b))) buckets))
  in
  let seq = ladder 1 and par = ladder 4 in
  List.iteri
    (fun i b ->
      Alcotest.(check string)
        (Printf.sprintf "ctx=%d identical across jobs" b)
        (List.nth seq i) (List.nth par i))
    buckets

(* On-disk store: survives a reset (process restart stand-in), serves
   byte-identical plans, and ignores a bogus cache file. *)
let test_disk_store_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "elk-cache-test-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end;
    Unix.putenv "ELK_COMPILE_CACHE_DIR" ""
  in
  Unix.putenv "ELK_COMPILE_CACHE_DIR" dir;
  Fun.protect ~finally:cleanup (fun () ->
      with_fresh_cache (fun () ->
          let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
          let g = Lazy.force Tu.tiny_llama in
          let cold = compile ctx ~pod g in
          Alcotest.(check bool) "entry written" true
            (Sys.file_exists dir && Array.length (Sys.readdir dir) > 0);
          Elk.Compilecache.reset ();
          let warm = compile ctx ~pod g in
          let s = Elk.Compilecache.stats () in
          Alcotest.(check bool) "served from disk" true
            (s.Elk.Compilecache.disk_hits > 0);
          Alcotest.(check string) "disk plan byte-identical" (export cold)
            (export warm);
          (* A corrupt entry reads as a miss, never an error. *)
          Array.iter
            (fun f ->
              let oc = open_out (Filename.concat dir f) in
              output_string oc "garbage";
              close_out oc)
            (Sys.readdir dir);
          Elk.Compilecache.reset ();
          let recold = compile ctx ~pod g in
          let s = Elk.Compilecache.stats () in
          Alcotest.(check int) "corrupt entry is a miss" 1
            s.Elk.Compilecache.plan_misses;
          Alcotest.(check string) "recompiled plan byte-identical" (export cold)
            (export recold)))

(* Disabled cache records nothing and touches no store. *)
let test_disabled_is_inert () =
  with_fresh_cache (fun () ->
      Elk.Compilecache.set_enabled false;
      let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
      let g = Lazy.force Tu.tiny_llama in
      let a = compile ctx ~pod g in
      let b = compile ctx ~pod g in
      let s = Elk.Compilecache.stats () in
      Alcotest.(check int) "no misses recorded" 0 s.Elk.Compilecache.plan_misses;
      Alcotest.(check int) "no hits recorded" 0 s.Elk.Compilecache.plan_hits;
      Alcotest.(check string) "plans still deterministic" (export a) (export b))

(* The generic LRU primitive: stamp-based eviction, cap shrinking. *)
let test_lru_eviction () =
  let module L = Elk.Compilecache.Lru in
  let t = L.create ~cap:2 () in
  L.put t "a" 1;
  L.put t "b" 2;
  Alcotest.(check (option int)) "a resident" (Some 1) (L.find t "a");
  (* "a" was just touched, so inserting "c" evicts "b". *)
  L.put t "c" 3;
  Alcotest.(check int) "at cap" 2 (L.length t);
  Alcotest.(check (option int)) "lru evicted" None (L.find t "b");
  Alcotest.(check (option int)) "mru kept" (Some 1) (L.find t "a");
  L.set_cap t 1;
  Alcotest.(check int) "shrunk to cap" 1 (L.length t);
  L.clear t;
  Alcotest.(check int) "cleared" 0 (L.length t)

let suite =
  [
    Alcotest.test_case "cold/warm/evicted byte-identical" `Quick
      test_cold_warm_identical;
    Alcotest.test_case "ctx ladder parity (warm, off, both topologies)" `Quick
      test_ladder_cache_off_parity;
    Alcotest.test_case "suffix resume byte-identical" `Quick
      test_suffix_resume_byte_identical;
    Alcotest.test_case "reorder memo hits across option changes" `Quick
      test_reorder_memo_hits;
    Alcotest.test_case "warm plans identical across jobs" `Quick test_jobs_parity;
    Alcotest.test_case "disk store roundtrip" `Quick test_disk_store_roundtrip;
    Alcotest.test_case "disabled cache is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction;
  ]
