(* Determinism of the parallel branch-and-bound order search: whatever
   the pool size, compilation must pick the same plan byte for byte, and
   the branch-and-bound bounds must actually fire. *)

open Elk_model

let options = { Elk.Compile.default_options with max_orders = 8 }

(* The compile cache is disabled here: these tests compare full searches
   across jobs counts, and a whole-plan cache hit on the second compile
   would make the comparison vacuous. *)
let compile_with ~jobs ?(options = options) ctx ~pod g =
  Elk_util.Pool.set_jobs jobs;
  let was = Elk.Compilecache.enabled () in
  Elk.Compilecache.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Elk_util.Pool.set_jobs 1;
      Elk.Compilecache.set_enabled was)
    (fun () -> Elk.Compile.compile ~options ctx ~pod g)

let fixtures () =
  let dit =
    Zoo.build
      (Zoo.scale Zoo.dit_xl ~factor:8 ~layer_factor:14)
      (Zoo.Decode { batch = 2; ctx = 1 })
  in
  let gemma =
    Zoo.build
      (Zoo.scale Zoo.gemma2_27b ~factor:16 ~layer_factor:23)
      (Zoo.Decode { batch = 8; ctx = 128 })
  in
  let opt =
    Zoo.build
      (Zoo.scale Zoo.opt_30b ~factor:8 ~layer_factor:24)
      (Zoo.Decode { batch = 8; ctx = 128 })
  in
  [
    ("llama/a2a", Lazy.force Tu.default_ctx, Tu.default_pod, Lazy.force Tu.tiny_llama);
    ("llama/mesh", Lazy.force Tu.mesh_ctx, Tu.mesh_pod, Lazy.force Tu.tiny_llama);
    ("gemma/a2a", Lazy.force Tu.default_ctx, Tu.default_pod, gemma);
    ("opt/mesh", Lazy.force Tu.mesh_ctx, Tu.mesh_pod, opt);
    ("dit/a2a", Lazy.force Tu.default_ctx, Tu.default_pod, dit);
  ]

let test_plan_byte_identical () =
  List.iter
    (fun (label, ctx, pod, g) ->
      let pod = Lazy.force pod in
      let seq = compile_with ~jobs:1 ctx ~pod g in
      let par = compile_with ~jobs:4 ctx ~pod g in
      Alcotest.(check string)
        (label ^ ": plan bytes")
        (Elk.Planio.export seq.Elk.Compile.schedule)
        (Elk.Planio.export par.Elk.Compile.schedule);
      Alcotest.(check int)
        (label ^ ": orders tried")
        seq.Elk.Compile.orders_tried par.Elk.Compile.orders_tried)
    (fixtures ())

let counter name =
  match List.assoc_opt name (Elk_obs.Metrics.counters ()) with
  | Some v -> v
  | None -> 0.

let test_pruning_fires () =
  let was_enabled = Elk_obs.Control.is_enabled () in
  Elk_obs.Control.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Elk_obs.Control.disable ())
    (fun () ->
      let before = counter "elk_compile_orders_pruned_total" in
      (* A zero margin makes the cutoff the baseline's own lower bound:
         any candidate order that cannot even match the execution order's
         stall-free makespan is skipped or abandoned mid-induction.  The
         tiny fixture is too small for candidate orders to differ, so use
         a width-scaled two-layer model where reordering genuinely moves
         the stall-free makespan. *)
      let tight = { options with Elk.Compile.prune_margin = 0. } in
      let g =
        Zoo.build
          (Zoo.scale Zoo.llama2_13b ~factor:8 ~layer_factor:20)
          (Zoo.Decode { batch = 32; ctx = 256 })
      in
      let c =
        compile_with ~jobs:2 ~options:tight (Lazy.force Tu.default_ctx)
          ~pod:(Lazy.force Tu.default_pod) g
      in
      Alcotest.(check bool) "compiled" true (Elk.Compile.latency c > 0.);
      Alcotest.(check bool)
        "orders pruned" true
        (counter "elk_compile_orders_pruned_total" > before))

let test_negative_margin_disables_cutoff () =
  let loose = { options with Elk.Compile.prune_margin = -1. } in
  let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
  let c = compile_with ~jobs:2 ~options:loose ctx ~pod (Lazy.force Tu.tiny_llama) in
  let seq = compile_with ~jobs:1 ~options:loose ctx ~pod (Lazy.force Tu.tiny_llama) in
  Alcotest.(check string) "plan bytes without cutoff"
    (Elk.Planio.export seq.Elk.Compile.schedule)
    (Elk.Planio.export c.Elk.Compile.schedule)

let test_pruning_never_worsens_plan () =
  (* Branch-and-bound is sound: the winning makespan with pruning on
     equals the exhaustive search's (margin off). *)
  let ctx = Lazy.force Tu.default_ctx and pod = Lazy.force Tu.default_pod in
  let exhaustive =
    compile_with ~jobs:1
      ~options:{ options with Elk.Compile.prune_margin = -1. }
      ctx ~pod (Lazy.force Tu.tiny_llama)
  in
  let pruned =
    compile_with ~jobs:4
      ~options:{ options with Elk.Compile.prune_margin = 0.25 }
      ctx ~pod (Lazy.force Tu.tiny_llama)
  in
  (* The margin only prunes candidates whose stall-free bound exceeds the
     baseline's by >25%; on this model the winner sits well inside it. *)
  Tu.check_rel "same winning makespan" ~tolerance:0.25
    exhaustive.Elk.Compile.timeline.Elk.Timeline.total
    pruned.Elk.Compile.timeline.Elk.Timeline.total

let test_dse_full_sim_deterministic () =
  let env = { Elk_dse.Dse.pod = Lazy.force Tu.default_pod; ctx = Lazy.force Tu.default_ctx } in
  let g = Lazy.force Tu.tiny_llama in
  let eval jobs =
    Elk_util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Elk_util.Pool.set_jobs 1)
      (fun () ->
        Elk_dse.Dse.evaluate ~elk_options:options env g Elk_baselines.Baselines.Elk_full)
  in
  let seq = eval 1 and par = eval 4 in
  Tu.check_float "elk-full sim latency" seq.Elk_dse.Dse.latency par.Elk_dse.Dse.latency

let test_evaluate_all_parallel () =
  let env = { Elk_dse.Dse.pod = Lazy.force Tu.default_pod; ctx = Lazy.force Tu.default_ctx } in
  let g = Lazy.force Tu.tiny_llama in
  let eval jobs =
    Elk_util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Elk_util.Pool.set_jobs 1)
      (fun () -> Elk_dse.Dse.evaluate_all ~elk_options:options env g)
  in
  let seq = eval 1 and par = eval 4 in
  Alcotest.(check int) "all designs" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Elk_dse.Dse.eval) (b : Elk_dse.Dse.eval) ->
      Alcotest.(check bool) "design order" true (a.Elk_dse.Dse.design = b.Elk_dse.Dse.design);
      Tu.check_float
        (Elk_baselines.Baselines.name a.Elk_dse.Dse.design ^ " latency")
        a.Elk_dse.Dse.latency b.Elk_dse.Dse.latency)
    seq par

let suite =
  [
    Alcotest.test_case "plan byte-identical across jobs" `Quick test_plan_byte_identical;
    Alcotest.test_case "branch-and-bound pruning fires" `Quick test_pruning_fires;
    Alcotest.test_case "negative margin disables cutoff" `Quick
      test_negative_margin_disables_cutoff;
    Alcotest.test_case "pruning keeps the winner" `Quick test_pruning_never_worsens_plan;
    Alcotest.test_case "dse full-sim search deterministic" `Quick
      test_dse_full_sim_deterministic;
    Alcotest.test_case "evaluate_all parallel equals sequential" `Quick
      test_evaluate_all_parallel;
  ]
