(* Timeseries: half-open window semantics, tiling invariants, per-kind
   aggregation, ring truncation.  The window-edge and tiling cases are
   the acceptance checks for the serving time series: a sample exactly
   on a window edge must land in the window the edge opens, and the
   exported windows must tile [0, horizon] with no gaps. *)

module T = Elk_obs.Timeseries

let feq = Alcotest.(check (float 1e-9))

let test_edge_sample_opens_next_window () =
  (* Half-open [i, i+1): a sample exactly at t = 1.0 belongs to window 1,
     not window 0. *)
  let ts = T.create ~window:1.0 () in
  T.add ts "c" ~time:1.0 7.;
  let pts = T.points ts ~horizon:2.0 "c" in
  Alcotest.(check int) "two windows" 2 (List.length pts);
  let w0 = List.nth pts 0 and w1 = List.nth pts 1 in
  Alcotest.(check int) "edge sample not in window 0" 0 w0.T.count;
  Alcotest.(check int) "edge sample in window 1" 1 w1.T.count;
  feq "w1 sum" 7. w1.T.sum

let test_edge_sample_extends_coverage () =
  (* A sample on the horizon's closing edge opens one more window: the
     tiling grows rather than dropping the sample. *)
  let ts = T.create ~window:1.0 () in
  T.add ts "c" ~time:2.0 1.;
  Alcotest.(check int) "three windows" 3 (T.n_windows ts ~horizon:2.0 "c");
  match T.check_tiling ts ~horizon:2.0 "c" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_exact_horizon_no_extra_window () =
  let ts = T.create ~window:1.0 () in
  T.add ts "c" ~time:0.5 1.;
  Alcotest.(check int) "exactly covered" 10 (T.n_windows ts ~horizon:10.0 "c")

let test_tiling () =
  let ts = T.create ~window:0.25 () in
  T.set ts "g" ~time:0. 1.;
  T.set ts "g" ~time:2.5 3.;
  (match T.check_tiling ts ~horizon:10. "g" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let pts = T.points ts ~horizon:10. "g" in
  Alcotest.(check int) "40 windows" 40 (List.length pts);
  feq "starts at 0" 0. (List.hd pts).T.t0;
  feq "reaches horizon" 10. (List.nth pts 39).T.t1;
  List.iteri
    (fun i p ->
      feq (Printf.sprintf "window %d start" i) (0.25 *. float_of_int i) p.T.t0;
      feq (Printf.sprintf "window %d width" i) 0.25 (p.T.t1 -. p.T.t0))
    pts;
  (match T.check_tiling ts ~horizon:10. "missing" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown series should not tile")

let test_counter_semantics () =
  let ts = T.create ~window:1.0 () in
  T.add ts "c" ~time:0.5 2.;
  T.add ts "c" ~time:0.7 3.;
  T.add ts "c" ~time:1.2 5.;
  let pts = T.points ts ~horizon:3.0 "c" in
  Alcotest.(check int) "windows" 3 (List.length pts);
  let w0 = List.nth pts 0 and w1 = List.nth pts 1 and w2 = List.nth pts 2 in
  feq "w0 sum" 5. w0.T.sum;
  feq "w0 rate" 5. w0.T.mean;
  feq "w0 running total" 5. w0.T.last;
  feq "w1 running total" 10. w1.T.last;
  Alcotest.(check int) "w2 empty" 0 w2.T.count;
  feq "w2 rate 0" 0. w2.T.mean;
  feq "w2 keeps total" 10. w2.T.last

let test_gauge_carry_forward () =
  let ts = T.create ~window:1.0 () in
  T.set ts "g" ~time:0.5 4.;
  let pts = T.points ts ~horizon:3.0 "g" in
  let w0 = List.nth pts 0 and w1 = List.nth pts 1 in
  (* value 0 for the first half of window 0, then 4: time-weighted mean 2 *)
  feq "w0 time-weighted mean" 2. w0.T.mean;
  feq "w0 min includes carry-in" 0. w0.T.vmin;
  feq "w0 max" 4. w0.T.vmax;
  feq "w0 last" 4. w0.T.last;
  (* empty window: the gauge holds its value *)
  Alcotest.(check int) "w1 no events" 0 w1.T.count;
  feq "w1 carried mean" 4. w1.T.mean;
  feq "w1 carried last" 4. w1.T.last

let test_histogram_percentiles () =
  let ts = T.create ~window:1.0 () in
  for i = 1 to 100 do
    T.observe ts "h" ~time:0.5 (float_of_int i)
  done;
  let w0 = List.hd (T.points ts "h") in
  Alcotest.(check int) "count" 100 w0.T.count;
  feq "p50 interpolated" 50.5 w0.T.p50;
  feq "p99 interpolated" 99.01 w0.T.p99;
  feq "max" 100. w0.T.vmax;
  feq "mean" 50.5 w0.T.mean

let test_ring_truncation () =
  (* capacity 2 keeps the newest two windows, but the dropped window
     still seeds the running total. *)
  let ts = T.create ~window:1.0 ~capacity:2 () in
  T.add ts "c" ~time:0.5 1.;
  T.add ts "c" ~time:1.5 2.;
  T.add ts "c" ~time:2.5 4.;
  let pts = T.points ts "c" in
  Alcotest.(check int) "ring keeps two" 2 (List.length pts);
  feq "ring starts at window 1" 1.0 (List.hd pts).T.t0;
  feq "dropped window still counted in total" 7.
    (List.nth pts 1).T.last

let test_kind_clash_and_bad_inputs () =
  let ts = T.create () in
  T.add ts "x" ~time:0. 1.;
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> T.set ts "x" ~time:0. 1.);
  bad (fun () -> T.add ts "x" ~time:(-1.) 1.);
  bad (fun () -> T.add ts "x" ~time:0. Float.nan);
  bad (fun () -> ignore (T.create ~window:0. ()));
  bad (fun () -> ignore (T.create ~capacity:0 ()))

let test_json_and_chrome_export () =
  let ts = T.create ~window:1.0 () in
  T.add ts "c" ~time:0.5 2.;
  T.set ts "g" ~time:0.25 1.;
  T.observe ts "h" ~time:0.75 0.5;
  let j = T.to_json ts ~horizon:2.0 () in
  (match Elk_obs.Jsonx.parse j with
  | Ok v ->
      (match Elk_obs.Jsonx.member "series" v with
      | Some (Elk_obs.Jsonx.Obj kvs) ->
          Alcotest.(check (list string)) "all series exported" [ "c"; "g"; "h" ]
            (List.sort compare (List.map fst kvs))
      | _ -> Alcotest.fail "series object missing")
  | Error m -> Alcotest.fail ("invalid JSON: " ^ m));
  (* gauges: one counter event per change point; counters: one per window *)
  Alcotest.(check int) "gauge change points" 1
    (List.length (T.chrome_counter_events ts ~horizon:2.0 "g"));
  Alcotest.(check int) "counter per window" 2
    (List.length (T.chrome_counter_events ts ~horizon:2.0 "c"));
  List.iter
    (fun e ->
      match Elk_obs.Jsonx.parse e with
      | Ok _ -> ()
      | Error m -> Alcotest.fail ("invalid chrome event: " ^ m))
    (T.chrome_counter_events ts ~horizon:2.0 "h")

(* A gauge change exactly on a window edge: the old value carries fully
   through the earlier window, the new value holds from the edge — so
   the boundary window's time-weighted mean sees only the new value. *)
let test_gauge_set_at_window_boundary () =
  let ts = T.create ~window:1.0 () in
  T.set ts "g" ~time:0.0 2.;
  T.set ts "g" ~time:2.0 10.;
  let pts = T.points ts ~horizon:3.0 "g" in
  Alcotest.(check int) "three windows" 3 (List.length pts);
  let w1 = List.nth pts 1 and w2 = List.nth pts 2 in
  (* window [1,2): entirely the carried-in old value *)
  feq "carry-in mean" 2. w1.T.mean;
  feq "carry-in last" 2. w1.T.last;
  Alcotest.(check int) "no event in carried window" 0 w1.T.count;
  (* window [2,3): the edge change belongs to the window it opens *)
  Alcotest.(check int) "edge change in window 2" 1 w2.T.count;
  feq "boundary mean is all new value" 10. w2.T.mean;
  feq "boundary min includes carry" 2. w2.T.vmin;
  feq "boundary last" 10. w2.T.last

(* Counter-track export of a series that was never recorded: an empty
   list, not a crash and not a spurious zero track. *)
let test_chrome_counter_events_empty_series () =
  let ts = T.create ~window:1.0 () in
  T.set ts "present" ~time:0.5 1.;
  Alcotest.(check (list string)) "unknown series exports nothing" []
    (T.chrome_counter_events ts ~horizon:2.0 "absent");
  Alcotest.(check bool) "known series exports" true
    (T.chrome_counter_events ts ~horizon:2.0 "present" <> [])

let suite =
  [
    Alcotest.test_case "edge sample opens next window" `Quick
      test_edge_sample_opens_next_window;
    Alcotest.test_case "edge sample extends coverage" `Quick
      test_edge_sample_extends_coverage;
    Alcotest.test_case "exact horizon no extra window" `Quick
      test_exact_horizon_no_extra_window;
    Alcotest.test_case "tiling" `Quick test_tiling;
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge carry forward" `Quick test_gauge_carry_forward;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "ring truncation" `Quick test_ring_truncation;
    Alcotest.test_case "kind clash and bad inputs" `Quick
      test_kind_clash_and_bad_inputs;
    Alcotest.test_case "json and chrome export" `Quick test_json_and_chrome_export;
    Alcotest.test_case "gauge set at window boundary" `Quick
      test_gauge_set_at_window_boundary;
    Alcotest.test_case "counter export of empty series" `Quick
      test_chrome_counter_events_empty_series;
  ]
