open Elk_partition
open Elk_tensor
open Elk_util

let ctx () = Lazy.force Tu.default_ctx
let mctx () = Lazy.force Tu.mesh_ctx

let test_signature_stable_across_layers () =
  let a = Opspec.matmul ~name:"l0.q" ~m:16 ~n:64 ~k:64 () in
  let b = Opspec.matmul ~name:"l7.q" ~m:16 ~n:64 ~k:64 () in
  Alcotest.(check string) "same signature" (Partition.plan_signature a)
    (Partition.plan_signature b);
  let c = Opspec.matmul ~name:"x" ~m:16 ~n:64 ~k:32 () in
  Alcotest.(check bool) "shape matters" true
    (Partition.plan_signature a <> Partition.plan_signature c)

let test_enumerate_nonempty_sorted () =
  let plans = Partition.enumerate (ctx ()) Tu.matmul_op in
  Alcotest.(check bool) "nonempty" true (plans <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Partition.exec_time <= b.Partition.exec_time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted plans)

let test_plans_fit_constraints () =
  let c = ctx () in
  let chip = Partition.ctx_chip c in
  let sram = Elk_arch.Arch.usable_sram_per_core chip in
  List.iter
    (fun p ->
      Alcotest.(check bool) "cores bound" true
        (p.Partition.cores_used >= 1 && p.Partition.cores_used <= chip.Elk_arch.Arch.cores);
      Alcotest.(check bool) "fits sram" true (p.Partition.exec_space <= sram);
      Alcotest.(check bool) "tile covers" true
        (Array.for_all2 (fun t f -> t * f >= 32 || t * f >= 1) p.Partition.tile
           p.Partition.factors))
    (Partition.enumerate c Tu.matmul_op)

let test_tile_is_ceil_div () =
  List.iter
    (fun p ->
      Array.iteri
        (fun d f ->
          let e = Tu.matmul_op.Opspec.iter.(d) in
          Alcotest.(check int) "ceil division" ((e + f - 1) / f) p.Partition.tile.(d))
        p.Partition.factors)
    (Partition.enumerate (ctx ()) Tu.matmul_op)

let test_frontier_canonical () =
  let f = Partition.exec_frontier (ctx ()) Tu.matmul_op in
  Alcotest.(check bool) "nonempty" true (f <> []);
  Alcotest.(check bool) "canonical" true (Pareto.is_frontier f)

let test_fastest_plan () =
  (* [fastest_plan] minimizes exec time plus the plan's best preload
     overhead (so an execution-fast plan with a pathological preload state
     cannot win); it must come from the enumeration and be within 2x of
     the raw execution-time minimum. *)
  let c = ctx () in
  let plans = Partition.enumerate c Tu.matmul_op in
  let fastest = Partition.fastest_plan c Tu.matmul_op in
  Alcotest.(check bool) "member" true
    (List.exists (fun p -> p.Partition.factors = fastest.Partition.factors) plans);
  let raw_min =
    List.fold_left (fun a p -> Float.min a p.Partition.exec_time) infinity plans
  in
  Alcotest.(check bool) "near raw minimum" true (fastest.Partition.exec_time <= 2. *. raw_min)

let test_fastest_within () =
  let c = ctx () in
  let frontier = Partition.exec_frontier c Tu.matmul_op in
  let smallest = List.hd frontier in
  (match Partition.fastest_plan_within c Tu.matmul_op ~space:smallest.Pareto.x with
  | Some p -> Alcotest.(check bool) "fits budget" true (p.Partition.exec_space <= smallest.Pareto.x)
  | None -> Alcotest.fail "smallest frontier point must fit");
  Alcotest.(check bool) "tiny budget fails" true
    (Partition.fastest_plan_within c Tu.matmul_op ~space:1. = None)

let test_larger_space_not_slower () =
  (* Fig 5's core claim: the frontier trades space for time, so the
     biggest-space frontier plan is the fastest. *)
  let f = Partition.exec_frontier (ctx ()) Tu.matmul_op in
  let first = List.hd f and last = List.nth f (List.length f - 1) in
  Alcotest.(check bool) "more space faster" true (last.Pareto.y <= first.Pareto.y)

let test_mesh_restricts_split_dims () =
  let plans = Partition.enumerate (mctx ()) Tu.matmul_op in
  Alcotest.(check bool) "nonempty" true (plans <> []);
  List.iter
    (fun p ->
      let split = Array.fold_left (fun a f -> if f > 1 then a + 1 else a) 0 p.Partition.factors in
      Alcotest.(check bool) "at most 2 split dims" true (split <= 2))
    plans

let test_a2a_allows_more_dims () =
  let op = Opspec.batch_matmul ~name:"b" ~batch:8 ~m:8 ~n:64 ~k:64 () in
  let plans = Partition.enumerate (ctx ()) op in
  Alcotest.(check bool) "some plan splits 3 dims" true
    (List.exists
       (fun p ->
         Array.fold_left (fun a f -> if f > 1 then a + 1 else a) 0 p.Partition.factors >= 3)
       plans)

let test_memoization_hits () =
  let c = ctx () in
  let a = Opspec.matmul ~name:"x1" ~m:24 ~n:96 ~k:96 () in
  let b = Opspec.matmul ~name:"x2" ~m:24 ~n:96 ~k:96 () in
  let pa = Partition.enumerate c a and pb = Partition.enumerate c b in
  Alcotest.(check bool) "same list (memoized)" true (pa == pb)

let test_exchange_zero_when_unshared () =
  (* Partitioning only m slices the activation and shares the weight; a
     plan splitting only the n dim shares the activation instead.  A plan
     that splits nothing has no exchange. *)
  let c = ctx () in
  let op = Opspec.softmax ~name:"s" ~rows:256 ~cols:64 () in
  List.iter
    (fun p ->
      if Array.for_all2 (fun f e -> f = e || f = 1) p.Partition.factors op.Opspec.iter then
        ()
      else ();
      (* softmax input is indexed by both dims: never shared, no exchange
         from inputs; only reduction if cols split. *)
      if p.Partition.factors.(1) = 1 then
        Tu.check_float "row split has no exchange" 0. p.Partition.exchange_bytes_per_core)
    (Partition.enumerate c op)

let test_preload_options_pareto () =
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  let opts = Partition.preload_options c Tu.matmul_op plan in
  Alcotest.(check bool) "nonempty" true (opts <> []);
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        a.Partition.preload_space <= b.Partition.preload_space && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by space" true (ascending opts)

let test_preload_options_extremes () =
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  let opts = Partition.preload_options c Tu.matmul_op plan in
  let last = List.nth opts (List.length opts - 1) in
  (* Full broadcast: nothing left to distribute. *)
  Tu.check_float "full broadcast no dist" 0. last.Partition.dist_bytes_per_core;
  Tu.check_float "frac 1" 1. last.Partition.frac;
  let first = List.hd opts in
  if List.length opts > 1 then begin
    Alcotest.(check bool) "min space smaller" true
      (first.Partition.preload_space < last.Partition.preload_space);
    Alcotest.(check bool) "min space pays dist" true (first.Partition.dist_bytes_per_core > 0.)
  end

let test_preload_conservation () =
  (* preload_space + dist_bytes = execute-state resident bytes per core. *)
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  List.iter
    (fun o ->
      Tu.check_rel "space + dist = needed" ~tolerance:1e-9 plan.Partition.hbm_needed_per_core
        (o.Partition.preload_space +. o.Partition.dist_bytes_per_core))
    (Partition.preload_options c Tu.matmul_op plan)

let test_preload_device_bytes_constant () =
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  let opts = Partition.preload_options c Tu.matmul_op plan in
  let d = (List.hd opts).Partition.hbm_device_bytes in
  Tu.check_float "= weight bytes" (Opspec.hbm_bytes Tu.matmul_op) d;
  List.iter (fun o -> Tu.check_float "same device bytes" d o.Partition.hbm_device_bytes) opts

let test_preload_no_hbm_single_zero_option () =
  let c = ctx () in
  let op = Opspec.softmax ~name:"s" ~rows:64 ~cols:64 () in
  let plan = Partition.fastest_plan c op in
  match Partition.preload_options c op plan with
  | [ o ] ->
      Tu.check_float "no space" 0. o.Partition.preload_space;
      Tu.check_float "no len" 0. o.Partition.preload_len
  | other -> Alcotest.failf "expected 1 option, got %d" (List.length other)

let test_preload_len_at_least_floor () =
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  List.iter
    (fun o ->
      Alcotest.(check bool) "len >= floor" true
        (o.Partition.preload_len >= o.Partition.hbm_floor -. 1e-15))
    (Partition.preload_options c Tu.matmul_op plan)

let test_overhead_zero_somewhere () =
  (* Some option should be near the HBM floor with no dist: otherwise the
     op is pathologically interconnect-bound. *)
  let c = ctx () in
  let plan = Partition.fastest_plan c Tu.matmul_op in
  let best =
    List.fold_left
      (fun a o -> Float.min a (Partition.preload_overhead o))
      infinity
      (Partition.preload_options c Tu.matmul_op plan)
  in
  Alcotest.(check bool) "small best overhead" true (best < 1e-3)

let test_signature_digests_full_spec () =
  (* Regression: the pre-digest signature was a separator-joined concat
     of kind/iter/dims/dtype that ignored [flops_per_point] entirely —
     two pointwise ops of the same shape but different per-point cost
     collided and shared enumeration results.  The digest form must
     distinguish every field the cost model reads. *)
  let ew ?(flops = 1.) ?(dtype = Elk_tensor.Dtype.Fp16) name =
    Opspec.elementwise ~dtype ~flops_per_point:flops ~name ~kind:"silu"
      ~shape:[ 256; 64 ] ()
  in
  let a = ew "e1" in
  Alcotest.(check bool) "flops_per_point distinguishes" true
    (Partition.plan_signature a <> Partition.plan_signature (ew ~flops:4. "e2"));
  Alcotest.(check bool) "dtype distinguishes" true
    (Partition.plan_signature a
    <> Partition.plan_signature (ew ~dtype:Elk_tensor.Dtype.Fp32 "e3"));
  Alcotest.(check string) "name still ignored" (Partition.plan_signature a)
    (Partition.plan_signature (ew "renamed"));
  (* Fixed-length hex output: composite memo keys append suffixes to the
     signature and rely on it never containing separators. *)
  Alcotest.(check int) "fixed-length digest" 32
    (String.length (Partition.plan_signature a));
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digest" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    (Partition.plan_signature a)

let test_fingerprint_separates_topologies () =
  Alcotest.(check bool) "a2a and mesh contexts fingerprint apart" true
    (Partition.fingerprint (ctx ()) <> Partition.fingerprint (mctx ()))

let test_shared_memo_across_contexts () =
  let was = Partition.memo_sharing () in
  Partition.set_memo_sharing true;
  Fun.protect
    ~finally:(fun () ->
      Partition.set_memo_sharing was;
      Partition.reset_shared_memos ())
    (fun () ->
      Partition.reset_shared_memos ();
      let chip = (Lazy.force Tu.default_pod).Elk_arch.Arch.chip in
      let cost = Elk_cost.Costmodel.train ~samples_per_kind:60 chip in
      let c1 = Partition.make_ctx cost and c2 = Partition.make_ctx cost in
      Alcotest.(check string) "equal fingerprints" (Partition.fingerprint c1)
        (Partition.fingerprint c2);
      ignore (Partition.enumerate c1 Tu.matmul_op);
      let m2, _ = Partition.memo_sizes c2 in
      Alcotest.(check bool) "second context reuses first's enumeration" true
        (m2 > 0);
      (* Sharing off: a fresh context gets private empty tables. *)
      Partition.set_memo_sharing false;
      let c3 = Partition.make_ctx cost in
      let m3, _ = Partition.memo_sizes c3 in
      Alcotest.(check int) "private tables when sharing is off" 0 m3;
      (* Reset clears tables in place, so live contexts go cold too. *)
      Partition.set_memo_sharing true;
      Partition.reset_shared_memos ();
      let m1, _ = Partition.memo_sizes c1 in
      Alcotest.(check int) "reset empties live contexts" 0 m1)

let qcheck_enumerate_valid =
  Tu.qtest ~count:25 "partition: random matmuls produce consistent plans"
    QCheck2.Gen.(triple (int_range 1 64) (int_range 8 512) (int_range 8 512))
    (fun (m, n, k) ->
      let op = Opspec.matmul ~name:"q" ~m ~n ~k () in
      let c = ctx () in
      let cores = (Partition.ctx_chip c).Elk_arch.Arch.cores in
      List.for_all
        (fun p ->
          p.Partition.exec_time > 0.
          && p.Partition.exec_space > 0.
          && p.Partition.cores_used
             = min cores (Array.fold_left ( * ) 1 p.Partition.factors))
        (Partition.enumerate c op))

let suite =
  [
    ("partition: signatures", `Quick, test_signature_stable_across_layers);
    ("partition: enumerate sorted", `Quick, test_enumerate_nonempty_sorted);
    ("partition: plan constraints", `Quick, test_plans_fit_constraints);
    ("partition: ceil-div tiles", `Quick, test_tile_is_ceil_div);
    ("partition: frontier canonical", `Quick, test_frontier_canonical);
    ("partition: fastest plan", `Quick, test_fastest_plan);
    ("partition: fastest within budget", `Quick, test_fastest_within);
    ("partition: space-time tradeoff", `Quick, test_larger_space_not_slower);
    ("partition: mesh split limit", `Quick, test_mesh_restricts_split_dims);
    ("partition: a2a full splits", `Quick, test_a2a_allows_more_dims);
    ("partition: memoization", `Quick, test_memoization_hits);
    ("partition: unshared no exchange", `Quick, test_exchange_zero_when_unshared);
    ("partition: popt pareto", `Quick, test_preload_options_pareto);
    ("partition: popt extremes", `Quick, test_preload_options_extremes);
    ("partition: popt conservation", `Quick, test_preload_conservation);
    ("partition: device bytes constant", `Quick, test_preload_device_bytes_constant);
    ("partition: no-hbm zero option", `Quick, test_preload_no_hbm_single_zero_option);
    ("partition: len above floor", `Quick, test_preload_len_at_least_floor);
    ("partition: reachable floor", `Quick, test_overhead_zero_somewhere);
    ("partition: signature digests full spec", `Quick, test_signature_digests_full_spec);
    ("partition: fingerprint separates topologies", `Quick,
     test_fingerprint_separates_topologies);
    ("partition: shared memo across contexts", `Quick, test_shared_memo_across_contexts);
    qcheck_enumerate_valid;
  ]
