open Elk_serve
module B = Elk_baselines.Baselines

let cfg () = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20
let env () = Elk_dse.Dse.env ()

let small_run =
  lazy
    (Serve.serve ~design:B.Elk_dyn
       (Elk_dse.Dse.env ())
       (Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20)
       ~batch:8 ~prompt_ctx:100 ~tokens:40)

let test_step_structure () =
  let r = Lazy.force small_run in
  Alcotest.(check int) "all tokens" 40 (List.length r.Serve.steps);
  List.iteri
    (fun i (s : Serve.step) ->
      Alcotest.(check int) "token index" i s.Serve.token;
      Alcotest.(check int) "ctx grows" (100 + i) s.Serve.ctx;
      Alcotest.(check bool) "positive latency" true (s.Serve.latency > 0.))
    r.Serve.steps

let test_plan_reuse () =
  (* 40 tokens from ctx 100 with quantum 64: plans at 128 and 192 only. *)
  let r = Lazy.force small_run in
  Alcotest.(check int) "two plans" 2 r.Serve.recompilations;
  Alcotest.(check int) "recompile flags match plans" 2
    (List.length (List.filter (fun s -> s.Serve.recompiled) r.Serve.steps))

let test_latency_grows_with_kv () =
  (* Later steps carry a larger KV cache; the last plan cannot be faster
     than the first. *)
  let r = Lazy.force small_run in
  Alcotest.(check bool) "kv growth costs" true
    (Serve.last_latency r
    >= (match r.Serve.steps with s :: _ -> s.Serve.latency *. 0.999 | [] -> 0.))

let test_totals_consistent () =
  let r = Lazy.force small_run in
  Tu.check_rel "total = sum of steps" ~tolerance:1e-9
    (List.fold_left (fun a (s : Serve.step) -> a +. s.Serve.latency) 0. r.Serve.steps)
    r.Serve.total_time;
  Tu.check_rel "tok/s" ~tolerance:1e-9
    (40. /. r.Serve.total_time)
    r.Serve.tokens_per_second

let test_recompile_quantum () =
  let r =
    Serve.serve ~design:B.Basic ~recompile_every:16 (env ()) (cfg ()) ~batch:4
      ~prompt_ctx:30 ~tokens:40
  in
  (* ctx spans 30..69 -> plan boundaries 32, 48, 64, 80. *)
  Alcotest.(check int) "four plans" 4 r.Serve.recompilations

let test_rejects_bad_args () =
  Alcotest.(check bool) "tokens" true
    (try
       ignore (Serve.serve (env ()) (cfg ()) ~batch:4 ~prompt_ctx:10 ~tokens:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ideal rejected" true
    (try
       ignore
         (Serve.serve ~design:B.Ideal (env ()) (cfg ()) ~batch:4 ~prompt_ctx:10 ~tokens:1);
       false
     with Invalid_argument _ -> true)

let test_elk_serves_faster_than_basic () =
  let run design =
    Serve.serve ~design (env ()) (cfg ()) ~batch:8 ~prompt_ctx:100 ~tokens:16
  in
  let basic = run B.Basic and elk = run B.Elk_dyn in
  Alcotest.(check bool) "elk >= basic throughput" true
    (elk.Serve.tokens_per_second >= basic.Serve.tokens_per_second *. 0.999)


let test_prefill_ttft () =
  let r =
    Serve.serve ~design:B.Elk_dyn ~prefill:true (env ()) (cfg ()) ~batch:4 ~prompt_ctx:64
      ~tokens:4
  in
  Alcotest.(check bool) "prefill latency positive" true (r.Serve.prefill_latency > 0.);
  Tu.check_rel "ttft = prefill + first step" ~tolerance:1e-9
    (r.Serve.prefill_latency
    +. match r.Serve.steps with s :: _ -> s.Serve.latency | [] -> 0.)
    (Serve.time_to_first_token r);
  (* Prefill processes 64x the tokens of one decode step; even with
     per-op overheads dominating at this tiny scale it must cost more
     than a decode step. *)
  Alcotest.(check bool) "prefill costlier than a decode step" true
    (r.Serve.prefill_latency > Serve.mean_latency r)

let test_zero_step_guards () =
  (* A degenerate run (no steps recorded) must yield zeros, not a
     division by zero, from every derived-metric helper. *)
  let empty =
    {
      Serve.steps = [];
      prefill_latency = 0.;
      total_time = 0.;
      compile_time = 0.;
      tokens_per_second = 0.;
      recompilations = 0;
      highwater = 0.;
      busiest_link = "";
      link_busy = 0.;
    }
  in
  Alcotest.(check (float 0.)) "mean latency" 0. (Serve.mean_latency empty);
  Alcotest.(check (float 0.)) "last latency" 0. (Serve.last_latency empty);
  Alcotest.(check (float 0.)) "tokens per second" 0.
    (Serve.tokens_per_second empty);
  Alcotest.(check (float 0.)) "ttft" 0. (Serve.time_to_first_token empty);
  (* steps recorded but zero elapsed time: still no division by zero *)
  let zero_time =
    {
      empty with
      Serve.steps =
        [ { Serve.token = 0; ctx = 64; latency = 0.; recompiled = true } ];
    }
  in
  Alcotest.(check (float 0.)) "zero-time throughput" 0.
    (Serve.tokens_per_second zero_time);
  (* and a real run agrees with its stored field *)
  let r = Lazy.force small_run in
  Tu.check_rel "recomputed = stored" ~tolerance:1e-9
    r.Serve.tokens_per_second
    (Serve.tokens_per_second r)

let suite =
  [
    ("serve: step structure", `Slow, test_step_structure);
    ("serve: plan reuse", `Slow, test_plan_reuse);
    ("serve: latency grows with KV", `Slow, test_latency_grows_with_kv);
    ("serve: totals consistent", `Slow, test_totals_consistent);
    ("serve: recompile quantum", `Slow, test_recompile_quantum);
    ("serve: rejects bad args", `Quick, test_rejects_bad_args);
    ("serve: prefill ttft", `Slow, test_prefill_ttft);
    ("serve: elk vs basic throughput", `Slow, test_elk_serves_faster_than_basic);
    ("serve: zero-step guards", `Slow, test_zero_step_guards);
  ]
