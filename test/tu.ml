(* Shared fixtures for the test suite.  Cost-model training is the most
   expensive setup step, so trained contexts are created lazily and
   shared. *)

let default_pod = lazy (Elk_arch.Arch.Presets.scaled_pod ())

let small_pod =
  lazy (Elk_arch.Arch.Presets.scaled_pod ~chips:2 ~cores:16 ())

let mesh_pod = lazy (Elk_arch.Arch.Presets.scaled_pod ~topology_kind:`Mesh ())

let ctx_of pod =
  let chip = (Lazy.force pod).Elk_arch.Arch.chip in
  Elk_partition.Partition.make_ctx
    (Elk_cost.Costmodel.train ~samples_per_kind:150 chip)

let default_ctx = lazy (ctx_of default_pod)
let small_ctx = lazy (ctx_of small_pod)
let mesh_ctx = lazy (ctx_of mesh_pod)

(* A small but structurally complete decode model: 2 transformer layers of
   a 1/16-scale Llama2-13B. *)
let tiny_llama =
  lazy
    (let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20 in
     Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 16; ctx = 128 }))

let tiny_llama_chip_graph =
  lazy (Elk.Sharding.shard_graph ~chips:4 (Lazy.force tiny_llama))

let tiny_schedule =
  lazy (Elk.Scheduler.run (Lazy.force default_ctx) (Lazy.force tiny_llama_chip_graph))

let mesh_schedule =
  lazy (Elk.Scheduler.run (Lazy.force mesh_ctx) (Lazy.force tiny_llama_chip_graph))

let matmul_op = Elk_tensor.Opspec.matmul ~name:"t.mm" ~m:32 ~n:256 ~k:256 ()

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) name a b = Alcotest.(check (float eps)) name a b

let check_rel name ~tolerance expected actual =
  let rel =
    if expected = 0. then Float.abs actual
    else Float.abs (actual -. expected) /. Float.abs expected
  in
  if rel > tolerance then
    Alcotest.failf "%s: expected %g within %.1f%%, got %g (off by %.1f%%)" name expected
      (100. *. tolerance) actual (100. *. rel)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
