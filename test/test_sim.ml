open Elk_sim

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule

let result = lazy (Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let test_total_positive () =
  Alcotest.(check bool) "positive" true ((Lazy.force result).Sim.total > 0.)

let test_executes_sequential () =
  let r = Lazy.force result in
  Array.iteri
    (fun i (o : Sim.op_trace) ->
      if i > 0 then
        Alcotest.(check bool) "sequential" true
          (r.Sim.per_op.(i - 1).Sim.exe_end <= o.Sim.exe_start +. 1e-12))
    r.Sim.per_op

let test_preload_before_exec () =
  let r = Lazy.force result in
  Array.iter
    (fun (o : Sim.op_trace) ->
      Alcotest.(check bool) "preload completes first" true
        (o.Sim.pre_end <= o.Sim.exe_start +. 1e-12))
    r.Sim.per_op

let test_phases_ordered () =
  let r = Lazy.force result in
  Array.iter
    (fun (o : Sim.op_trace) ->
      Alcotest.(check bool) "dist then compute then exchange" true
        (o.Sim.exe_start <= o.Sim.dist_end
        && o.Sim.dist_end <= o.Sim.compute_end
        && o.Sim.compute_end <= o.Sim.exe_end))
    r.Sim.per_op

let test_preloads_sequential_in_order () =
  let r = Lazy.force result in
  let s = sched () in
  let order = s.Elk.Schedule.order in
  for k = 1 to Array.length order - 1 do
    Alcotest.(check bool) "hbm channel sequential" true
      (r.Sim.per_op.(order.(k - 1)).Sim.pre_end
      <= r.Sim.per_op.(order.(k)).Sim.pre_start +. 1e-12)
  done

let test_volumes_match_schedule () =
  let r = Lazy.force result in
  let s = sched () in
  Tu.check_rel "hbm volume" ~tolerance:0.01
    (Elk_model.Graph.total_hbm_bytes s.Elk.Schedule.graph)
    r.Sim.hbm_device_volume;
  Alcotest.(check bool) "hbm requests issued" true (r.Sim.hbm_requests > 0)

let test_breakdown_nonnegative () =
  let b = (Lazy.force result).Sim.bd in
  Alcotest.(check bool) "nonneg" true
    (b.Elk.Timeline.preload_only >= 0. && b.Elk.Timeline.execute_only >= 0.
   && b.Elk.Timeline.overlapped >= 0. && b.Elk.Timeline.interconnect >= 0.)

let test_utilizations_bounded () =
  let r = Lazy.force result in
  Alcotest.(check bool) "hbm <= 1" true (r.Sim.hbm_util > 0. && r.Sim.hbm_util <= 1.0001);
  Alcotest.(check bool) "noc bounded" true (r.Sim.noc_util > 0. && r.Sim.noc_util <= 1.2)

let test_deterministic () =
  let a = Sim.run (ctx ()) (sched ()) in
  let b = Sim.run (ctx ()) (sched ()) in
  Tu.check_float "same total" a.Sim.total b.Sim.total

let test_skew_increases_makespan () =
  let base = Sim.run ~skew:0. (ctx ()) (sched ()) in
  let skewed = Sim.run ~skew:0.1 (ctx ()) (sched ()) in
  (* Max over cores of a 1-centered perturbation only grows. *)
  Alcotest.(check bool) "skew slows" true (skewed.Sim.total >= base.Sim.total *. 0.999)

let test_agrees_with_timeline_roughly () =
  (* The paper validates the simulator against the emulator; we require the
     analytic evaluator to land within 2x of the simulator. *)
  let diff = Sim.compare_with_timeline (ctx ()) (sched ()) in
  Alcotest.(check bool) "within 50%" true (diff < 0.5)

(* Resource attribution must tile the makespan exactly: every core's five
   buckets and every operator's four attribution shares are accumulated
   independently in the event loop, so any leak in the decomposition shows
   up as a sum that misses [total]. *)
let check_perf_invariant name (r : Sim.result) =
  (match Perfcore.check r.Sim.perf ~total:r.Sim.total with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m);
  Array.iteri
    (fun c b ->
      Tu.check_rel
        (Printf.sprintf "%s: core %d buckets sum to makespan" name c)
        ~tolerance:1e-6 r.Sim.total (Perfcore.bucket_sum b))
    r.Sim.perf.Perfcore.per_core;
  let op_total =
    Array.fold_left (fun acc a -> acc +. Perfcore.attrib_sum a) 0. r.Sim.perf.Perfcore.per_op
  in
  Tu.check_rel (name ^ ": op attributions sum to makespan") ~tolerance:1e-6
    r.Sim.total op_total

let test_attrib_tiles_makespan () = check_perf_invariant "a2a" (Lazy.force result)

let test_attrib_tiles_makespan_mesh () =
  let mctx = Lazy.force Tu.mesh_ctx in
  let s = Elk.Scheduler.run mctx (Lazy.force Tu.tiny_llama_chip_graph) in
  check_perf_invariant "mesh" (Sim.run mctx s)

let test_mesh_runs () =
  let mctx = Lazy.force Tu.mesh_ctx in
  let g = Lazy.force Tu.tiny_llama_chip_graph in
  let s = Elk.Scheduler.run mctx g in
  let r = Sim.run mctx s in
  Alcotest.(check bool) "mesh sim positive" true (r.Sim.total > 0.)

let test_mesh_not_faster_than_a2a () =
  (* Same per-link bandwidth: the mesh pays multi-hop delivery, so it
     cannot beat all-to-all on the same schedule family (Fig 21's
     "mesh always experiences higher interconnect utilization"). *)
  let actx = ctx () and mctx = Lazy.force Tu.mesh_ctx in
  let g = Lazy.force Tu.tiny_llama_chip_graph in
  let ra = Sim.run actx (Elk.Scheduler.run actx g) in
  let rm = Sim.run mctx (Elk.Scheduler.run mctx g) in
  Alcotest.(check bool) "mesh >= a2a * 0.9" true (rm.Sim.total >= 0.9 *. ra.Sim.total)

let suite =
  [
    ("sim: positive total", `Quick, test_total_positive);
    ("sim: executes sequential", `Quick, test_executes_sequential);
    ("sim: preload before exec", `Quick, test_preload_before_exec);
    ("sim: phase ordering", `Quick, test_phases_ordered);
    ("sim: preload channel sequential", `Quick, test_preloads_sequential_in_order);
    ("sim: volumes conserved", `Quick, test_volumes_match_schedule);
    ("sim: breakdown nonnegative", `Quick, test_breakdown_nonnegative);
    ("sim: utilizations bounded", `Quick, test_utilizations_bounded);
    ("sim: deterministic", `Quick, test_deterministic);
    ("sim: skew effect", `Quick, test_skew_increases_makespan);
    ("sim: timeline agreement", `Quick, test_agrees_with_timeline_roughly);
    ("sim: attribution tiles makespan (a2a)", `Quick, test_attrib_tiles_makespan);
    ("sim: attribution tiles makespan (mesh)", `Slow, test_attrib_tiles_makespan_mesh);
    ("sim: mesh runs", `Slow, test_mesh_runs);
    ("sim: mesh vs a2a", `Slow, test_mesh_not_faster_than_a2a);
  ]
