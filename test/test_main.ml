(* Entry point aggregating every suite; `dune runtest` runs this. *)

let () =
  Alcotest.run "elk"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("obs", Test_obs.suite);
      ("tensor", Test_tensor.suite);
      ("model", Test_model.suite);
      ("arch", Test_arch.suite);
      ("hbm", Test_hbm.suite);
      ("noc", Test_noc.suite);
      ("cost", Test_cost.suite);
      ("partition", Test_partition.suite);
      ("core", Test_core.suite);
      ("opsplit", Test_opsplit.suite);
      ("sim", Test_sim.suite);
      ("critpath", Test_critpath.suite);
      ("analyze", Test_analyze.suite);
      ("baselines", Test_baselines.suite);
      ("gtext", Test_gtext.suite);
      ("extensions", Test_extensions.suite);
      ("semantics", Test_semantics.suite);
      ("properties", Test_properties.suite);
      ("edges", Test_edges.suite);
      ("fusion", Test_fusion.suite);
      ("verify", Test_verify.suite);
      ("dse", Test_dse.suite);
      ("parallel", Test_parallel.suite);
      ("compilecache", Test_compilecache.suite);
      ("serve", Test_serve.suite);
      ("workload", Test_workload.suite);
      ("timeseries", Test_timeseries.suite);
      ("memprof", Test_memprof.suite);
      ("nocprof", Test_nocprof.suite);
      ("frontend", Test_frontend.suite);
      ("integration", Test_integration.suite);
    ]
