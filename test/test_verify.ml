(* The static verifier: every analysis family must flag its broken
   schedule and stay silent on a clean one, and the compiler must refuse
   plans the installed verifier rejects. *)

module S = Elk.Schedule
module P = Elk_partition.Partition
module G = Elk_model.Graph
module V = Elk_verify.Verify
module R = Elk_verify.Rules
module Dg = Elk_verify.Diag

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule

let has rule (r : V.report) = List.exists (fun d -> d.Dg.rule = rule) r.V.diags

(* Substring containment, to avoid pulling a string library into tests. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_has name rule r =
  if not (has rule r) then
    Alcotest.failf "%s: expected a %s diagnostic, got [%s]" name rule
      (String.concat "; "
         (List.map (fun d -> Format.asprintf "%a" Dg.pp d) r.V.diags))

let check_not name rule r =
  if has rule r then Alcotest.failf "%s: unexpected %s diagnostic" name rule

(* Every entry claims a preload residency of the full per-core SRAM: any
   step with at least one live preload must overflow, while the real
   option frontiers still admit a fitting assignment (reducible). *)
let inflated ctx (s : S.t) =
  let capacity = Elk_arch.Arch.usable_sram_per_core (P.ctx_chip ctx) in
  let entries =
    Array.map
      (fun (e : S.op_entry) ->
        { e with S.popt = { e.S.popt with P.preload_space = capacity } })
      s.S.entries
  in
  { s with S.entries }

let test_clean_golden () =
  let r = V.run (ctx ()) ~program:(Elk.Program.of_schedule (sched ())) (sched ()) in
  Alcotest.(check int) "no errors on the scheduler's own output" 0 (V.errors r);
  check_not "clean" "dep.schedule-structure" r;
  check_not "clean" "dep.edge-order" r;
  check_not "clean" "dep.program-stream" r;
  check_not "clean" "dep.program-consistency" r;
  check_not "clean" "num.finite" r;
  check_not "clean" "mem.capacity" r;
  check_not "clean" "mem.underfetch" r;
  Alcotest.(check int) "all default (non-opt-in) rules checked"
    (List.length (List.filter (fun ru -> not ru.R.opt_in) R.all))
    (List.length r.V.rules_checked)

let test_capacity_overflow () =
  let ctx = ctx () in
  let s = inflated ctx (sched ()) in
  let r = V.run ctx s in
  (* The real option frontiers still admit a fitting assignment, so the
     overflow is reducible: an error, not the tolerated fallback. *)
  check_has "inflated" "mem.capacity" r;
  check_not "inflated" "mem.overcommit" r;
  Alcotest.(check bool) "error severity" true (V.errors r > 0)

let test_use_before_preload () =
  let s = sched () in
  let n = S.num_ops s in
  let order = Array.copy s.S.order in
  let p0 = ref 0 in
  Array.iteri (fun k id -> if id = 0 then p0 := k) order;
  let tmp = order.(n - 1) in
  order.(n - 1) <- order.(!p0);
  order.(!p0) <- tmp;
  let r = V.run (ctx ()) { s with S.order } in
  check_has "late preload" "mem.use-before-preload" r;
  check_has "late preload" "dep.schedule-structure" r

let test_double_preload () =
  let s = sched () in
  let order = Array.copy s.S.order in
  order.(1) <- order.(0);
  let r = V.run (ctx ()) { s with S.order } in
  check_has "duplicate" "mem.double-preload" r;
  check_has "duplicate" "dep.schedule-structure" r

let test_nan_duration () =
  let s = sched () in
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let s' = { s with S.entries } in
  let r = V.run (ctx ()) s' in
  check_has "nan" "num.finite" r;
  check_has "nan" "dep.schedule-structure" r;
  (match S.validate s' with
  | Ok () -> Alcotest.fail "Schedule.validate must reject a NaN preload_len"
  | Error _ -> ())

let test_byte_conservation () =
  let s = sched () in
  let heavy = ref (-1) in
  Array.iteri
    (fun i (e : S.op_entry) ->
      if !heavy < 0 && e.S.plan.P.hbm_needed_per_core > 16. then heavy := i)
    s.S.entries;
  Alcotest.(check bool) "fixture has an HBM-resident op" true (!heavy >= 0);
  let mangle f =
    let entries = Array.copy s.S.entries in
    let e = entries.(!heavy) in
    entries.(!heavy) <- { e with S.popt = f e.S.popt };
    V.run (ctx ()) { s with S.entries }
  in
  let under =
    mangle (fun o -> { o with P.preload_space = 0.; dist_bytes_per_core = 0. })
  in
  check_has "underfetch" "mem.underfetch" under;
  let over =
    mangle (fun o -> { o with P.dist_bytes_per_core = o.P.dist_bytes_per_core +. 4096. })
  in
  check_has "overfetch" "mem.overfetch" over;
  check_not "overfetch is not underfetch" "mem.underfetch" over

let test_program_dependency_violation () =
  let s = sched () in
  let p = Elk.Program.of_schedule s in
  (* Swap the executes of a dependent pair: execute(i) before its dep. *)
  let i =
    let found = ref (-1) in
    Array.iter
      (fun node -> if !found < 0 && node.G.deps <> [] then found := node.G.id)
      (G.nodes s.S.graph);
    !found
  in
  Alcotest.(check bool) "fixture has a dependency edge" true (i >= 0);
  let d = List.hd (G.get s.S.graph i).G.deps in
  let instrs = Array.copy p.Elk.Program.instrs in
  let ki = ref (-1) and kd = ref (-1) in
  Array.iteri
    (fun k instr ->
      match instr with
      | Elk.Program.Execute op when op = i -> ki := k
      | Elk.Program.Execute op when op = d -> kd := k
      | _ -> ())
    instrs;
  let tmp = instrs.(!ki) in
  instrs.(!ki) <- instrs.(!kd);
  instrs.(!kd) <- tmp;
  let r = V.run (ctx ()) ~program:{ Elk.Program.instrs } s in
  check_has "swapped executes" "dep.edge-order" r;
  check_has "swapped executes" "dep.program-stream" r

let test_program_consistency () =
  let s = sched () in
  let n = S.num_ops s in
  let windows = Array.make (n + 1) 0 in
  windows.(0) <- n;
  (* A stream that is valid on its own but lays the windows out
     differently from the schedule under verification. *)
  let p = Elk.Program.of_schedule { s with S.windows } in
  let r = V.run (ctx ()) ~program:p s in
  check_has "foreign program" "dep.program-consistency" r;
  check_not "stream itself is fine" "dep.program-stream" r

let test_est_total_lints () =
  let ctx = ctx () in
  let s = sched () in
  let r = V.run ctx { s with S.est_total = 1e-15 } in
  check_has "tiny makespan" "bw.hbm-roofline" r;
  check_has "tiny makespan" "bw.inject-roofline" r;
  check_has "tiny makespan" "num.est-drift" r;
  (* est_total = 0 is the baselines/deserialization sentinel: exempt. *)
  let r0 = V.run ctx { s with S.est_total = 0. } in
  check_not "sentinel" "bw.hbm-roofline" r0;
  check_not "sentinel" "num.est-drift" r0

let test_rule_selection () =
  (match R.selection_of_string "mem,-mem.overfetch" with
  | Error m -> Alcotest.failf "selection parse failed: %s" m
  | Ok sel ->
      Alcotest.(check bool) "family token" true (R.enabled sel "mem.capacity");
      Alcotest.(check bool) "suppressed" false (R.enabled sel "mem.overfetch");
      Alcotest.(check bool) "other family off" false (R.enabled sel "dep.edge-order"));
  (match R.selection_of_string "bogus.rule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown token must be rejected");
  (* A suppressed family must not run at all. *)
  let s = sched () in
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let sel =
    match R.selection_of_string "mem" with Ok s -> s | Error m -> Alcotest.fail m
  in
  let r = V.run ~rules:sel (ctx ()) { s with S.entries } in
  check_not "num suppressed" "num.finite" r;
  Alcotest.(check int) "only mem rules checked" 6 (List.length r.V.rules_checked)

let test_check_and_report () =
  let ctx = ctx () in
  let s = sched () in
  (match V.check ctx s (Elk.Program.of_schedule s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean schedule rejected: %s" m);
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let broken = { s with S.entries } in
  (match V.check ctx broken (Elk.Program.of_schedule broken) with
  | Ok () -> Alcotest.fail "NaN schedule must be rejected by check"
  | Error m ->
      Alcotest.(check bool) "summary cites the rule" true
        (contains ~sub:"num.finite" m || contains ~sub:"dep.schedule-structure" m));
  let r = V.run ctx broken in
  let json = V.report_to_json r in
  Alcotest.(check bool) "json has error count" true
    (contains ~sub:"\"errors\":" json);
  let text = Format.asprintf "%a" V.pp_report r in
  Alcotest.(check bool) "text has summary" true
    (contains ~sub:"error(s)" text)

let test_compile_refuses_flagged_plans () =
  Alcotest.(check bool) "verifier installed at link time" true
    (Elk.Compile.verifier () <> None);
  let ctx = ctx () in
  let pod = Lazy.force Tu.default_pod in
  let g = Lazy.force Tu.tiny_llama in
  let saved = Elk.Compile.verifier () in
  Elk.Compile.set_verifier (Some (fun _ _ _ -> Error "nope"));
  Fun.protect
    ~finally:(fun () -> Elk.Compile.set_verifier saved)
    (fun () ->
      Alcotest.check_raises "rejected" (Elk.Compile.Rejected "nope") (fun () ->
          ignore (Elk.Compile.compile ctx ~pod g)));
  (* With the real verifier restored, the same compile goes through. *)
  ignore (Elk.Compile.compile ctx ~pod g)

let test_schedule_validate_numeric () =
  let s = sched () in
  let expect_error name s' =
    match S.validate s' with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: validate must reject" name
  in
  let with_entry0 f =
    let entries = Array.copy s.S.entries in
    entries.(0) <- f entries.(0);
    { s with S.entries }
  in
  expect_error "nan preload_len"
    (with_entry0 (fun e -> { e with S.preload_len = Float.nan }));
  expect_error "negative dist_time"
    (with_entry0 (fun e -> { e with S.dist_time = -1e-9 }));
  expect_error "infinite est_total" { s with S.est_total = Float.infinity };
  expect_error "negative est_total" { s with S.est_total = -1. };
  match S.validate s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean schedule rejected: %s" m

let test_program_validate_reports_index () =
  let p =
    { Elk.Program.instrs = [| Elk.Program.Execute 0; Elk.Program.Preload_async 0 |] }
  in
  match Elk.Program.validate p ~n:1 with
  | Ok () -> Alcotest.fail "execute-before-preload must be rejected"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the instruction" m)
        true
        (contains ~sub:"instr 0:" m)

(* ---- happens-before DAG (ISSUE 8) ---- *)

module Hb = Elk_verify.Hb
module Races = Elk_verify.Races
module Dl = Elk_verify.Deadlock
module N = Elk_noc.Noc
module Rd = Elk.Residency

let test_hb_structure () =
  let s = sched () in
  let n = S.num_ops s in
  let hb = Hb.of_schedule s in
  Alcotest.(check bool) "all four node kinds exist for op 0" true
    (Hb.mem hb (Hb.Issue 0) && Hb.mem hb (Hb.Write 0) && Hb.mem hb (Hb.Exec 0)
    && Hb.mem hb (Hb.Tail 0));
  (* The execute chain is totally ordered. *)
  Alcotest.(check bool) "exec chain" true (Hb.reaches hb (Hb.Exec 0) (Hb.Exec (n - 1)));
  Alcotest.(check bool) "exec chain is strict" false
    (Hb.reaches hb (Hb.Exec (n - 1)) (Hb.Exec 0));
  for op = 0 to n - 1 do
    if not (Hb.reaches hb (Hb.Issue op) (Hb.Write op)) then
      Alcotest.failf "issue(%d) must precede write(%d)" op op;
    if not (Hb.reaches hb (Hb.Write op) (Hb.Exec op)) then
      Alcotest.failf "write(%d) must precede exec(%d)" op op;
    if not (Hb.reaches hb (Hb.Exec op) (Hb.Tail op)) then
      Alcotest.failf "exec(%d) must precede tail(%d)" op op;
    (* Antisymmetry on the per-op chain. *)
    if Hb.reaches hb (Hb.Exec op) (Hb.Issue op) then
      Alcotest.failf "exec(%d) must not precede issue(%d)" op op
  done;
  (* A delivery is NOT ordered against executes inside its issue window:
     write(b) for any op b issued before exec 0 but executing later. *)
  let b = s.S.order.(0) in
  if b <> 0 then begin
    Alcotest.(check bool) "delivery concurrent with earlier exec" false
      (Hb.reaches hb (Hb.Exec 0) (Hb.Write b));
    Alcotest.(check bool) "…but ordered before its own exec" true
      (Hb.reaches hb (Hb.Write b) (Hb.Exec b))
  end;
  (* Witness paths start at the root and end at the queried node. *)
  let w = Hb.witness hb (Hb.Exec (n - 1)) in
  Alcotest.(check bool) "witness nonempty" true (w <> []);
  Alcotest.(check string) "witness ends at the target" "exec"
    (match List.rev w with Hb.Exec _ :: _ -> "exec" | _ -> "other");
  let total, bitset = Hb.query_stats hb in
  Alcotest.(check bool) "queries answered" true (total > 0 && bitset <= total)

let test_alloc_layout_self_consistent () =
  let s = sched () in
  let layout = Elk.Alloc.layout_of_schedule s in
  Alcotest.(check bool) "layout nonempty" true (layout <> []);
  List.iter
    (fun (a : Elk.Alloc.allocation) ->
      if a.Elk.Alloc.a_base < 0. || a.Elk.Alloc.a_size <= 0. then
        Alcotest.failf "op %d: bad interval [%g, %g)" a.Elk.Alloc.a_op
          a.Elk.Alloc.a_base a.Elk.Alloc.a_size)
    layout;
  (* The allocator's own layout races with nothing. *)
  let hb = Hb.of_schedule s in
  let fired = ref [] in
  Races.check
    ~emit:(fun rule _ _ msg -> fired := (rule, msg) :: !fired)
    ~on:(fun _ -> true)
    ~hb ~layout s;
  match !fired with
  | [] -> ()
  | (rule, msg) :: _ ->
      Alcotest.failf "self-consistent layout raced: %s — %s" rule msg

let test_race_detection_synthetic () =
  (* Two preload buffers of concurrently-live operators at overlapping
     addresses: their asynchronous deliveries are mutually unordered, so
     the pair must be reported as race.waw whatever the window shape. *)
  let s = sched () in
  let hb = Hb.of_schedule s in
  let a = s.S.order.(0) and b = s.S.order.(1) in
  let alloc op base =
    { Elk.Alloc.a_op = op; a_kind = Rd.Preload; a_base = base; a_size = 100. }
  in
  let fired = ref [] in
  Races.check
    ~emit:(fun rule _ payload msg -> fired := (rule, payload, msg) :: !fired)
    ~on:(fun _ -> true)
    ~hb
    ~layout:[ alloc a 0.; alloc b 50. ]
    s;
  match !fired with
  | [ (rule, _, msg) ] ->
      Alcotest.(check string) "rule" "race.waw" rule;
      Alcotest.(check bool) "message carries a witness" true
        (contains ~sub:"witness" msg)
  | l -> Alcotest.failf "expected exactly one race, got %d" (List.length l)

let test_race_detection_mutated_plan () =
  (* End-to-end seeding: serialize the plan with its recorded layout,
     delete an ordering edge by moving one late preload issue into the
     first window, re-import, and lint with the stale layout.  Skipped
     (vacuously passing) when every preload is already issued up front —
     the tiny fixture compiles both ways across cost-model retrains. *)
  let ctx = ctx () in
  let s = sched () in
  let layout = Elk.Alloc.layout_of_schedule s in
  let n = S.num_ops s in
  let mutate w =
    let order = Array.copy s.S.order and windows = Array.copy s.S.windows in
    let start = ref 0 in
    for i = 0 to w - 1 do
      start := !start + windows.(i)
    done;
    let p = !start + windows.(w) - 1 in
    let q = windows.(0) + windows.(1) in
    let b = order.(p) in
    for i = p downto q + 1 do
      order.(i) <- order.(i - 1)
    done;
    order.(q) <- b;
    windows.(1) <- windows.(1) + 1;
    windows.(w) <- windows.(w) - 1;
    { s with S.order; S.windows }
  in
  let found = ref false in
  for w = n downto 2 do
    if (not !found) && s.S.windows.(w) > 0 then begin
      let text = Elk.Planio.export ~layout (mutate w) in
      match Elk.Planio.import_ext ctx text with
      | Error _ -> ()
      | Ok (s2, lay) ->
          let layout2 =
            match lay with
            | Some l -> l
            | None -> Alcotest.fail "exported layout must round-trip"
          in
          let r =
            V.run ~rules:R.lint_selection ~layout:layout2
              ~program:(Elk.Program.of_schedule s2) ctx s2
          in
          if has "race.waw" r || has "race.war" r then begin
            found := true;
            let race =
              List.find
                (fun d ->
                  d.Dg.rule = "race.waw" || d.Dg.rule = "race.war")
                r.V.diags
            in
            Alcotest.(check bool) "witness in message" true
              (contains ~sub:"witness" race.Dg.message)
          end
    end
  done;
  if not !found then
    (* All preloads up front: no later window to pull forward.  The
       synthetic test above still covers the detector. *)
    Alcotest.(check bool) "windows all up front" true
      (Array.for_all (fun w -> w = 0) (Array.sub s.S.windows 2 (n - 1)))

let test_layout_roundtrip () =
  let ctx = ctx () in
  let s = sched () in
  let layout = Elk.Alloc.layout_of_schedule s in
  match Elk.Planio.import_ext ctx (Elk.Planio.export ~layout s) with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok (_, None) -> Alcotest.fail "layout section lost"
  | Ok (_, Some l2) ->
      Alcotest.(check int) "same length" (List.length layout) (List.length l2);
      List.iter2
        (fun (a : Elk.Alloc.allocation) (b : Elk.Alloc.allocation) ->
          if a <> b then
            Alcotest.failf "op %d %s: layout not bit-exact" a.Elk.Alloc.a_op
              (Rd.kind_name a.Elk.Alloc.a_kind))
        layout l2

let test_deadlock_synthetic_cycle () =
  let edge a b = N.Edge { from_core = a; to_core = b } in
  let t op route = { Dl.t_op = op; t_phase = Dl.Exch; t_route = route } in
  (* Three transfers whose link acquisitions form a ring. *)
  let cyclic =
    [ t 0 [ edge 0 1; edge 1 2 ]; t 1 [ edge 1 2; edge 2 0 ]; t 2 [ edge 2 0; edge 0 1 ] ]
  in
  (match Dl.find_cycle cyclic with
  | None -> Alcotest.fail "ring of waits must be reported"
  | Some cyc ->
      Alcotest.(check int) "cycle length" 3 (List.length cyc.Dl.cy_links);
      Alcotest.(check int) "one contributor per edge" 3 (List.length cyc.Dl.cy_ops));
  (* Drop one transfer: the wait chain no longer closes. *)
  Alcotest.(check bool) "chain without the closing edge is clean" true
    (Dl.find_cycle [ t 0 [ edge 0 1; edge 1 2 ]; t 1 [ edge 1 2; edge 2 0 ] ] = None);
  (* A route that reacquires a link deadlocks against itself. *)
  Alcotest.(check bool) "self-loop detected" true
    (Dl.route_self_loop (t 0 [ edge 0 1; edge 1 0; edge 0 1 ]) <> None);
  Alcotest.(check bool) "simple route has no self-loop" true
    (Dl.route_self_loop (t 0 [ edge 0 1; edge 1 2 ]) = None)

let test_deadlock_clean_topologies () =
  let s = sched () in
  let check_noc name pod =
    let noc = N.create (Lazy.force pod).Elk_arch.Arch.chip in
    let transfers = Dl.transfers_of_schedule noc s in
    Alcotest.(check bool)
      (name ^ ": plan has communication transfers")
      true (transfers <> []);
    let fired = ref 0 in
    Dl.check ~emit:(fun _ _ _ _ -> incr fired) ~on:(fun _ -> true) noc s;
    Alcotest.(check int) (name ^ ": deployed topology is deadlock-free") 0 !fired
  in
  check_noc "a2a" Tu.default_pod;
  check_noc "mesh" Tu.mesh_pod

let test_sim_causal_reaches () =
  let module C = Elk_sim.Critpath in
  let s = sched () in
  let r = Elk_sim.Sim.run ~events:true (ctx ()) s in
  let events =
    match r.Elk_sim.Sim.events with
    | Some ev -> ev
    | None -> Alcotest.fail "simulator must record events"
  in
  let last = Array.length events - 1 in
  Alcotest.(check bool) "root reaches the terminal event" true
    (C.reaches events ~src:0 ~dst:last);
  Alcotest.(check bool) "terminal does not reach the root" false
    (C.reaches events ~src:last ~dst:0);
  Alcotest.(check bool) "reflexive" true (C.reaches events ~src:0 ~dst:0);
  match C.find_event events ~op:events.(0).C.op ~kind:events.(0).C.kind with
  | Some id -> Alcotest.(check int) "find_event finds the first" events.(0).C.id id
  | None -> Alcotest.fail "find_event must find an existing event"

let test_opt_in_selection () =
  Alcotest.(check bool) "default excludes race" false
    (R.enabled R.default_selection "race.war");
  Alcotest.(check bool) "default excludes deadlock" false
    (R.enabled R.default_selection "deadlock.cycle");
  Alcotest.(check bool) "default keeps mem" true
    (R.enabled R.default_selection "mem.capacity");
  Alcotest.(check bool) "lint includes race" true
    (R.enabled R.lint_selection "race.war");
  (match R.selection_of_string "race" with
  | Error m -> Alcotest.fail m
  | Ok sel ->
      Alcotest.(check bool) "explicitly named opt-in family runs" true
        (R.enabled sel "race.waw");
      Alcotest.(check bool) "other opt-in family stays off" false
        (R.enabled sel "deadlock.cycle"));
  match R.selection_of_string "-bw" with
  | Error m -> Alcotest.fail m
  | Ok sel ->
      Alcotest.(check bool) "suppression-only spec keeps default scope" false
        (R.enabled sel "race.war");
      Alcotest.(check bool) "with_opt_in widens it" true
        (R.enabled (R.with_opt_in sel) "race.war");
      Alcotest.(check bool) "suppression still applies" false
        (R.enabled (R.with_opt_in sel) "bw.hbm-roofline")

let test_promotion () =
  (match R.promotion_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown promotion token must be rejected");
  let promote =
    match R.promotion_of_string "bw,num.est-drift" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "family promoted" true (R.promoted promote "bw.hbm-roofline");
  Alcotest.(check bool) "rule promoted" true (R.promoted promote "num.est-drift");
  Alcotest.(check bool) "others untouched" false (R.promoted promote "mem.overcommit");
  (* A schedule with bandwidth warnings: promotion turns them into
     errors, so check/exit semantics follow. *)
  let ctx = ctx () in
  let s = { (sched ()) with S.est_total = 1e-15 } in
  let plain = V.run ctx s in
  Alcotest.(check bool) "unpromoted: warnings only" true
    (V.errors plain = 0 && V.warnings plain > 0);
  let promoted = V.run ~promote ctx s in
  Alcotest.(check bool) "promoted: errors" true (V.errors promoted > 0)

let test_sarif_output () =
  let ctx = ctx () in
  let s = sched () in
  let r =
    V.run ~rules:R.lint_selection ~program:(Elk.Program.of_schedule s) ctx s
  in
  let sarif = Elk_verify.Sarif.of_report r in
  Alcotest.(check bool) "sarif version" true (contains ~sub:"\"2.1.0\"" sarif);
  Alcotest.(check bool) "driver name" true (contains ~sub:"elk-lint" sarif);
  Alcotest.(check bool) "rules array lists the race rule" true
    (contains ~sub:"race.waw" sarif);
  Alcotest.(check string) "deterministic" sarif (Elk_verify.Sarif.of_report r)

let suite =
  [
    Alcotest.test_case "verify: clean golden schedule" `Slow test_clean_golden;
    Alcotest.test_case "verify: SRAM overflow" `Slow test_capacity_overflow;
    Alcotest.test_case "verify: use before preload" `Slow test_use_before_preload;
    Alcotest.test_case "verify: double preload" `Slow test_double_preload;
    Alcotest.test_case "verify: NaN duration" `Slow test_nan_duration;
    Alcotest.test_case "verify: byte conservation" `Slow test_byte_conservation;
    Alcotest.test_case "verify: dependency violation" `Slow
      test_program_dependency_violation;
    Alcotest.test_case "verify: program consistency" `Slow test_program_consistency;
    Alcotest.test_case "verify: est_total lints" `Slow test_est_total_lints;
    Alcotest.test_case "verify: rule selection" `Slow test_rule_selection;
    Alcotest.test_case "verify: check + report output" `Slow test_check_and_report;
    Alcotest.test_case "verify: compile refuses flagged plans" `Slow
      test_compile_refuses_flagged_plans;
    Alcotest.test_case "schedule: validate numeric hygiene" `Quick
      test_schedule_validate_numeric;
    Alcotest.test_case "program: validate reports instr index" `Quick
      test_program_validate_reports_index;
    Alcotest.test_case "hb: structure and reachability" `Slow test_hb_structure;
    Alcotest.test_case "alloc: layout is self-consistent" `Slow
      test_alloc_layout_self_consistent;
    Alcotest.test_case "races: synthetic overlapping preloads" `Slow
      test_race_detection_synthetic;
    Alcotest.test_case "races: mutated serialized plan" `Slow
      test_race_detection_mutated_plan;
    Alcotest.test_case "planio: layout round-trip is bit-exact" `Slow
      test_layout_roundtrip;
    Alcotest.test_case "deadlock: synthetic cycle and self-loop" `Quick
      test_deadlock_synthetic_cycle;
    Alcotest.test_case "deadlock: deployed topologies are clean" `Slow
      test_deadlock_clean_topologies;
    Alcotest.test_case "critpath: causal-DAG reachability" `Slow
      test_sim_causal_reaches;
    Alcotest.test_case "rules: opt-in selection semantics" `Quick
      test_opt_in_selection;
    Alcotest.test_case "rules: severity promotion" `Slow test_promotion;
    Alcotest.test_case "sarif: serialization" `Slow test_sarif_output;
  ]
