(* The static verifier: every analysis family must flag its broken
   schedule and stay silent on a clean one, and the compiler must refuse
   plans the installed verifier rejects. *)

module S = Elk.Schedule
module P = Elk_partition.Partition
module G = Elk_model.Graph
module V = Elk_verify.Verify
module R = Elk_verify.Rules
module Dg = Elk_verify.Diag

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule

let has rule (r : V.report) = List.exists (fun d -> d.Dg.rule = rule) r.V.diags

(* Substring containment, to avoid pulling a string library into tests. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_has name rule r =
  if not (has rule r) then
    Alcotest.failf "%s: expected a %s diagnostic, got [%s]" name rule
      (String.concat "; "
         (List.map (fun d -> Format.asprintf "%a" Dg.pp d) r.V.diags))

let check_not name rule r =
  if has rule r then Alcotest.failf "%s: unexpected %s diagnostic" name rule

(* Every entry claims a preload residency of the full per-core SRAM: any
   step with at least one live preload must overflow, while the real
   option frontiers still admit a fitting assignment (reducible). *)
let inflated ctx (s : S.t) =
  let capacity = Elk_arch.Arch.usable_sram_per_core (P.ctx_chip ctx) in
  let entries =
    Array.map
      (fun (e : S.op_entry) ->
        { e with S.popt = { e.S.popt with P.preload_space = capacity } })
      s.S.entries
  in
  { s with S.entries }

let test_clean_golden () =
  let r = V.run (ctx ()) ~program:(Elk.Program.of_schedule (sched ())) (sched ()) in
  Alcotest.(check int) "no errors on the scheduler's own output" 0 (V.errors r);
  check_not "clean" "dep.schedule-structure" r;
  check_not "clean" "dep.edge-order" r;
  check_not "clean" "dep.program-stream" r;
  check_not "clean" "dep.program-consistency" r;
  check_not "clean" "num.finite" r;
  check_not "clean" "mem.capacity" r;
  check_not "clean" "mem.underfetch" r;
  Alcotest.(check int) "all rules checked" (List.length R.all)
    (List.length r.V.rules_checked)

let test_capacity_overflow () =
  let ctx = ctx () in
  let s = inflated ctx (sched ()) in
  let r = V.run ctx s in
  (* The real option frontiers still admit a fitting assignment, so the
     overflow is reducible: an error, not the tolerated fallback. *)
  check_has "inflated" "mem.capacity" r;
  check_not "inflated" "mem.overcommit" r;
  Alcotest.(check bool) "error severity" true (V.errors r > 0)

let test_use_before_preload () =
  let s = sched () in
  let n = S.num_ops s in
  let order = Array.copy s.S.order in
  let p0 = ref 0 in
  Array.iteri (fun k id -> if id = 0 then p0 := k) order;
  let tmp = order.(n - 1) in
  order.(n - 1) <- order.(!p0);
  order.(!p0) <- tmp;
  let r = V.run (ctx ()) { s with S.order } in
  check_has "late preload" "mem.use-before-preload" r;
  check_has "late preload" "dep.schedule-structure" r

let test_double_preload () =
  let s = sched () in
  let order = Array.copy s.S.order in
  order.(1) <- order.(0);
  let r = V.run (ctx ()) { s with S.order } in
  check_has "duplicate" "mem.double-preload" r;
  check_has "duplicate" "dep.schedule-structure" r

let test_nan_duration () =
  let s = sched () in
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let s' = { s with S.entries } in
  let r = V.run (ctx ()) s' in
  check_has "nan" "num.finite" r;
  check_has "nan" "dep.schedule-structure" r;
  (match S.validate s' with
  | Ok () -> Alcotest.fail "Schedule.validate must reject a NaN preload_len"
  | Error _ -> ())

let test_byte_conservation () =
  let s = sched () in
  let heavy = ref (-1) in
  Array.iteri
    (fun i (e : S.op_entry) ->
      if !heavy < 0 && e.S.plan.P.hbm_needed_per_core > 16. then heavy := i)
    s.S.entries;
  Alcotest.(check bool) "fixture has an HBM-resident op" true (!heavy >= 0);
  let mangle f =
    let entries = Array.copy s.S.entries in
    let e = entries.(!heavy) in
    entries.(!heavy) <- { e with S.popt = f e.S.popt };
    V.run (ctx ()) { s with S.entries }
  in
  let under =
    mangle (fun o -> { o with P.preload_space = 0.; dist_bytes_per_core = 0. })
  in
  check_has "underfetch" "mem.underfetch" under;
  let over =
    mangle (fun o -> { o with P.dist_bytes_per_core = o.P.dist_bytes_per_core +. 4096. })
  in
  check_has "overfetch" "mem.overfetch" over;
  check_not "overfetch is not underfetch" "mem.underfetch" over

let test_program_dependency_violation () =
  let s = sched () in
  let p = Elk.Program.of_schedule s in
  (* Swap the executes of a dependent pair: execute(i) before its dep. *)
  let i =
    let found = ref (-1) in
    Array.iter
      (fun node -> if !found < 0 && node.G.deps <> [] then found := node.G.id)
      (G.nodes s.S.graph);
    !found
  in
  Alcotest.(check bool) "fixture has a dependency edge" true (i >= 0);
  let d = List.hd (G.get s.S.graph i).G.deps in
  let instrs = Array.copy p.Elk.Program.instrs in
  let ki = ref (-1) and kd = ref (-1) in
  Array.iteri
    (fun k instr ->
      match instr with
      | Elk.Program.Execute op when op = i -> ki := k
      | Elk.Program.Execute op when op = d -> kd := k
      | _ -> ())
    instrs;
  let tmp = instrs.(!ki) in
  instrs.(!ki) <- instrs.(!kd);
  instrs.(!kd) <- tmp;
  let r = V.run (ctx ()) ~program:{ Elk.Program.instrs } s in
  check_has "swapped executes" "dep.edge-order" r;
  check_has "swapped executes" "dep.program-stream" r

let test_program_consistency () =
  let s = sched () in
  let n = S.num_ops s in
  let windows = Array.make (n + 1) 0 in
  windows.(0) <- n;
  (* A stream that is valid on its own but lays the windows out
     differently from the schedule under verification. *)
  let p = Elk.Program.of_schedule { s with S.windows } in
  let r = V.run (ctx ()) ~program:p s in
  check_has "foreign program" "dep.program-consistency" r;
  check_not "stream itself is fine" "dep.program-stream" r

let test_est_total_lints () =
  let ctx = ctx () in
  let s = sched () in
  let r = V.run ctx { s with S.est_total = 1e-15 } in
  check_has "tiny makespan" "bw.hbm-roofline" r;
  check_has "tiny makespan" "bw.inject-roofline" r;
  check_has "tiny makespan" "num.est-drift" r;
  (* est_total = 0 is the baselines/deserialization sentinel: exempt. *)
  let r0 = V.run ctx { s with S.est_total = 0. } in
  check_not "sentinel" "bw.hbm-roofline" r0;
  check_not "sentinel" "num.est-drift" r0

let test_rule_selection () =
  (match R.selection_of_string "mem,-mem.overfetch" with
  | Error m -> Alcotest.failf "selection parse failed: %s" m
  | Ok sel ->
      Alcotest.(check bool) "family token" true (R.enabled sel "mem.capacity");
      Alcotest.(check bool) "suppressed" false (R.enabled sel "mem.overfetch");
      Alcotest.(check bool) "other family off" false (R.enabled sel "dep.edge-order"));
  (match R.selection_of_string "bogus.rule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown token must be rejected");
  (* A suppressed family must not run at all. *)
  let s = sched () in
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let sel =
    match R.selection_of_string "mem" with Ok s -> s | Error m -> Alcotest.fail m
  in
  let r = V.run ~rules:sel (ctx ()) { s with S.entries } in
  check_not "num suppressed" "num.finite" r;
  Alcotest.(check int) "only mem rules checked" 6 (List.length r.V.rules_checked)

let test_check_and_report () =
  let ctx = ctx () in
  let s = sched () in
  (match V.check ctx s (Elk.Program.of_schedule s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean schedule rejected: %s" m);
  let entries = Array.copy s.S.entries in
  entries.(0) <- { entries.(0) with S.preload_len = Float.nan };
  let broken = { s with S.entries } in
  (match V.check ctx broken (Elk.Program.of_schedule broken) with
  | Ok () -> Alcotest.fail "NaN schedule must be rejected by check"
  | Error m ->
      Alcotest.(check bool) "summary cites the rule" true
        (contains ~sub:"num.finite" m || contains ~sub:"dep.schedule-structure" m));
  let r = V.run ctx broken in
  let json = V.report_to_json r in
  Alcotest.(check bool) "json has error count" true
    (contains ~sub:"\"errors\":" json);
  let text = Format.asprintf "%a" V.pp_report r in
  Alcotest.(check bool) "text has summary" true
    (contains ~sub:"error(s)" text)

let test_compile_refuses_flagged_plans () =
  Alcotest.(check bool) "verifier installed at link time" true
    (Elk.Compile.verifier () <> None);
  let ctx = ctx () in
  let pod = Lazy.force Tu.default_pod in
  let g = Lazy.force Tu.tiny_llama in
  let saved = Elk.Compile.verifier () in
  Elk.Compile.set_verifier (Some (fun _ _ _ -> Error "nope"));
  Fun.protect
    ~finally:(fun () -> Elk.Compile.set_verifier saved)
    (fun () ->
      Alcotest.check_raises "rejected" (Elk.Compile.Rejected "nope") (fun () ->
          ignore (Elk.Compile.compile ctx ~pod g)));
  (* With the real verifier restored, the same compile goes through. *)
  ignore (Elk.Compile.compile ctx ~pod g)

let test_schedule_validate_numeric () =
  let s = sched () in
  let expect_error name s' =
    match S.validate s' with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: validate must reject" name
  in
  let with_entry0 f =
    let entries = Array.copy s.S.entries in
    entries.(0) <- f entries.(0);
    { s with S.entries }
  in
  expect_error "nan preload_len"
    (with_entry0 (fun e -> { e with S.preload_len = Float.nan }));
  expect_error "negative dist_time"
    (with_entry0 (fun e -> { e with S.dist_time = -1e-9 }));
  expect_error "infinite est_total" { s with S.est_total = Float.infinity };
  expect_error "negative est_total" { s with S.est_total = -1. };
  match S.validate s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean schedule rejected: %s" m

let test_program_validate_reports_index () =
  let p =
    { Elk.Program.instrs = [| Elk.Program.Execute 0; Elk.Program.Preload_async 0 |] }
  in
  match Elk.Program.validate p ~n:1 with
  | Ok () -> Alcotest.fail "execute-before-preload must be rejected"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the instruction" m)
        true
        (contains ~sub:"instr 0:" m)

let suite =
  [
    Alcotest.test_case "verify: clean golden schedule" `Slow test_clean_golden;
    Alcotest.test_case "verify: SRAM overflow" `Slow test_capacity_overflow;
    Alcotest.test_case "verify: use before preload" `Slow test_use_before_preload;
    Alcotest.test_case "verify: double preload" `Slow test_double_preload;
    Alcotest.test_case "verify: NaN duration" `Slow test_nan_duration;
    Alcotest.test_case "verify: byte conservation" `Slow test_byte_conservation;
    Alcotest.test_case "verify: dependency violation" `Slow
      test_program_dependency_violation;
    Alcotest.test_case "verify: program consistency" `Slow test_program_consistency;
    Alcotest.test_case "verify: est_total lints" `Slow test_est_total_lints;
    Alcotest.test_case "verify: rule selection" `Slow test_rule_selection;
    Alcotest.test_case "verify: check + report output" `Slow test_check_and_report;
    Alcotest.test_case "verify: compile refuses flagged plans" `Slow
      test_compile_refuses_flagged_plans;
    Alcotest.test_case "schedule: validate numeric hygiene" `Quick
      test_schedule_validate_numeric;
    Alcotest.test_case "program: validate reports instr index" `Quick
      test_program_validate_reports_index;
  ]
