(* Generate the known-bad plan fixture for the lint tests.

   Compiles the default CLI configuration (llama2-13b decode, scale 8,
   batch 32, 4 chips), records the address layout the allocator actually
   assigned, then deletes an ordering edge the layout relied on: one
   late preload issue is moved into the first window, so its delivery
   becomes concurrent with every execute in between while its recorded
   address interval still reuses SRAM that is live there.  The exported
   plan carries the stale layout section; `elk lint --plan` must flag
   the races.

   Usage: gen_fixture.exe <output-path>

   The mutation searches windows from the back and keeps the first
   candidate whose mutated plan re-imports cleanly and yields at least
   one race diagnostic, so the fixture stays valid across cost-model
   retrains (which may reshape the windows). *)

module S = Elk.Schedule
module R = Elk_verify.Rules
module V = Elk_verify.Verify
module D = Elk_dse.Dse

let is_race d =
  match R.find d.Elk_verify.Diag.rule with
  | Some r -> r.R.family = R.Race
  | None -> false

(* Move the last op of window [w]'s run to the end of window 1's run. *)
let mutate (s : S.t) ~w =
  let order = Array.copy s.S.order and windows = Array.copy s.S.windows in
  let start = ref 0 in
  for i = 0 to w - 1 do
    start := !start + windows.(i)
  done;
  let p = !start + windows.(w) - 1 in
  let q = windows.(0) + windows.(1) in
  let b = order.(p) in
  for i = p downto q + 1 do
    order.(i) <- order.(i - 1)
  done;
  order.(q) <- b;
  windows.(1) <- windows.(1) + 1;
  windows.(w) <- windows.(w) - 1;
  { s with S.order; S.windows }

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else (
      prerr_endline "usage: gen_fixture.exe <output-path>";
      exit 2)
  in
  let env = D.env ~chips:4 ~cores:64 ~topology:`All_to_all () in
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:8 ~layer_factor:10 in
  let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }) in
  let c = Elk.Compile.compile env.D.ctx ~pod:env.D.pod g in
  let s = c.Elk.Compile.schedule in
  let layout = Elk.Alloc.layout_of_schedule s in
  let n = S.num_ops s in
  let found = ref false in
  let w = ref n in
  while (not !found) && !w >= 2 do
    if s.S.windows.(!w) > 0 then begin
      let text = Elk.Planio.export ~layout (mutate s ~w:!w) in
      match Elk.Planio.import_ext env.D.ctx text with
      | Error _ -> ()
      | Ok (s2, lay) ->
          let layout2 = Option.value lay ~default:[] in
          let r =
            V.run ~rules:R.lint_selection ~layout:layout2
              ~program:(Elk.Program.of_schedule s2) env.D.ctx s2
          in
          let races = List.filter is_race r.V.diags in
          if races <> [] then begin
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote racy fixture to %s (window %d, %d race(s))\n"
              path !w (List.length races);
            found := true
          end
    end;
    decr w
  done;
  if not !found then begin
    prerr_endline "gen_fixture: no window mutation produced a race";
    exit 1
  end
