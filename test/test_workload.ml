(* Workload generator: determinism, arrival-process shape, length
   distributions.  The determinism tests are the contract the serving
   SLO snapshots rest on: the same seed must give the byte-identical
   request list on every run and at every jobs count. *)

open Elk_serve

let poisson_spec =
  {
    Workload.arrival = Workload.Poisson { rate = 10. };
    prompt = Workload.Uniform { lo = 16; hi = 64 };
    output = Workload.Uniform { lo = 4; hi = 12 };
  }

let show reqs = Workload.to_json reqs

let test_same_seed_identical () =
  let a = Workload.generate ~seed:123 ~n:50 poisson_spec in
  let b = Workload.generate ~seed:123 ~n:50 poisson_spec in
  Alcotest.(check string) "byte-identical" (show a) (show b)

let test_jobs_independent () =
  (* The generator never touches the pool, but the determinism contract
     is end to end: changing the worker count must not perturb it. *)
  let a = Workload.generate ~seed:9 ~n:32 poisson_spec in
  Elk_util.Pool.set_jobs 1;
  let b = Workload.generate ~seed:9 ~n:32 poisson_spec in
  Elk_util.Pool.set_jobs 4;
  let c = Workload.generate ~seed:9 ~n:32 poisson_spec in
  Alcotest.(check string) "jobs=1" (show a) (show b);
  Alcotest.(check string) "jobs=4" (show a) (show c)

let test_different_seeds_differ () =
  let a = Workload.generate ~seed:1 ~n:50 poisson_spec in
  let b = Workload.generate ~seed:2 ~n:50 poisson_spec in
  Alcotest.(check bool) "different streams" true (show a <> show b)

let check_basic reqs n spec =
  Alcotest.(check int) "count" n (List.length reqs);
  List.iteri
    (fun i (r : Workload.request) ->
      Alcotest.(check int) "ids sequential" i r.Workload.req_id;
      Alcotest.(check bool) "arrival nonnegative" true (r.Workload.arrival_s >= 0.);
      (match spec.Workload.prompt with
      | Workload.Uniform { lo; hi } ->
          Alcotest.(check bool) "prompt in band" true
            (lo <= r.Workload.prompt_len && r.Workload.prompt_len <= hi)
      | _ -> ());
      match spec.Workload.output with
      | Workload.Uniform { lo; hi } ->
          Alcotest.(check bool) "output in band" true
            (lo <= r.Workload.output_len && r.Workload.output_len <= hi)
      | _ -> ())
    reqs;
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "arrivals nondecreasing" true
          (a.Workload.arrival_s <= b.Workload.arrival_s);
        mono rest
    | _ -> ()
  in
  mono reqs

let test_all_arrival_kinds () =
  List.iter
    (fun arrival ->
      let spec = { poisson_spec with Workload.arrival } in
      check_basic (Workload.generate ~seed:5 ~n:40 spec) 40 spec)
    [
      Workload.Poisson { rate = 10. };
      Workload.Bursty
        { rate_on = 20.; rate_off = 0.; mean_on = 0.5; mean_off = 0.5 };
      Workload.Diurnal { base_rate = 5.; peak_rate = 15.; period = 4. };
    ]

let test_poisson_mean_rate () =
  (* 400 arrivals at rate 10: the empirical rate should land well within
     5x of nominal (it is a seeded draw, so this cannot flake). *)
  let reqs = Workload.generate ~seed:11 ~n:400 poisson_spec in
  let last = List.nth reqs 399 in
  let rate = 400. /. last.Workload.arrival_s in
  Alcotest.(check bool) "rate plausible" true (rate > 2. && rate < 50.)

let test_diurnal_rate_curve () =
  let f = Workload.diurnal_rate ~base_rate:2. ~peak_rate:10. ~period:8. in
  Alcotest.(check (float 1e-9)) "starts at base" 2. (f 0.);
  Alcotest.(check (float 1e-9)) "peaks mid-period" 10. (f 4.);
  Alcotest.(check (float 1e-9)) "returns to base" 2. (f 8.)

let test_fixed_and_lognormal () =
  let spec =
    {
      Workload.arrival = Workload.Poisson { rate = 5. };
      prompt = Workload.Fixed 32;
      output = Workload.Lognormal { mu = 2.; sigma = 0.5; lo = 2; hi = 20 };
    }
  in
  let reqs = Workload.generate ~seed:3 ~n:60 spec in
  List.iter
    (fun (r : Workload.request) ->
      Alcotest.(check int) "fixed prompt" 32 r.Workload.prompt_len;
      Alcotest.(check bool) "lognormal clamped" true
        (2 <= r.Workload.output_len && r.Workload.output_len <= 20))
    reqs

let test_validation () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () ->
      Workload.validate
        { poisson_spec with Workload.arrival = Workload.Poisson { rate = 0. } });
  bad (fun () ->
      Workload.validate
        { poisson_spec with Workload.prompt = Workload.Uniform { lo = 8; hi = 4 } });
  bad (fun () ->
      Workload.validate
        { poisson_spec with Workload.output = Workload.Fixed 0 });
  bad (fun () -> ignore (Workload.generate ~seed:1 ~n:0 poisson_spec))

let test_presets () =
  List.iter
    (fun name ->
      match Workload.preset name ~rate:8. ~prompt_mean:64 ~output_mean:16 with
      | None -> Alcotest.fail ("preset missing: " ^ name)
      | Some spec ->
          Workload.validate spec;
          Alcotest.(check string) "arrival matches name" name
            (Workload.arrival_name spec.Workload.arrival))
    Workload.preset_names;
  Alcotest.(check bool) "unknown preset" true
    (Workload.preset "steady" ~rate:1. ~prompt_mean:8 ~output_mean:8 = None)

let suite =
  [
    Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
    Alcotest.test_case "jobs independent" `Quick test_jobs_independent;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "all arrival kinds" `Quick test_all_arrival_kinds;
    Alcotest.test_case "poisson mean rate" `Quick test_poisson_mean_rate;
    Alcotest.test_case "diurnal rate curve" `Quick test_diurnal_rate_curve;
    Alcotest.test_case "fixed and lognormal" `Quick test_fixed_and_lognormal;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "presets" `Quick test_presets;
  ]
