open Elk_util

(* ------------------------------------------------------------------ *)
(* Pool: fixed domain pool with deterministic map                     *)
(* ------------------------------------------------------------------ *)

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_map_order () =
  with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "order preserved" (List.map (fun x -> x * x) xs)
        (Pool.map p (fun x -> x * x) xs))

let test_map_empty_and_singleton () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map p (fun x -> x + 1) [ 6 ]))

let test_jobs_one_fallback () =
  with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.jobs p);
      let seen = ref [] in
      let r =
        Pool.map p
          (fun x ->
            seen := x :: !seen;
            x * 2)
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "results" [ 2; 4; 6 ] r;
      (* Sequential fallback runs in list order on the calling domain. *)
      Alcotest.(check (list int)) "sequential order" [ 3; 2; 1 ] !seen)

let test_exception_propagation () =
  with_pool ~jobs:4 (fun p ->
      let raised =
        try
          ignore (Pool.map p (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x)
                    (List.init 20 (fun i -> i + 1)));
          None
        with Failure m -> Some m
      in
      (* Lowest-index failure wins regardless of completion timing. *)
      Alcotest.(check (option string)) "first failure" (Some "3") raised)

let test_exception_then_reuse () =
  with_pool ~jobs:4 (fun p ->
      (try ignore (Pool.map p (fun _ -> failwith "boom") [ 1; 2; 3 ]) with Failure _ -> ());
      (* The pool survives a raising map and keeps working. *)
      Alcotest.(check (list int)) "reused" [ 2; 3; 4 ] (Pool.map p (fun x -> x + 1) [ 1; 2; 3 ]))

let test_nested_map () =
  with_pool ~jobs:4 (fun p ->
      let r =
        Pool.map p
          (fun x ->
            (* Nested maps on the same pool run inline in the worker —
               this must not deadlock whatever the pool size. *)
            List.fold_left ( + ) 0 (Pool.map p (fun y -> x * y) [ 1; 2; 3 ]))
          (List.init 16 (fun i -> i))
      in
      Alcotest.(check (list int)) "nested results" (List.init 16 (fun i -> 6 * i)) r)

let test_filter_map () =
  with_pool ~jobs:3 (fun p ->
      let r =
        Pool.filter_map p (fun x -> if x mod 2 = 0 then Some (x / 2) else None)
          (List.init 10 Fun.id)
      in
      Alcotest.(check (list int)) "filtered in order" [ 0; 1; 2; 3; 4 ] r)

let test_many_tasks_few_workers () =
  with_pool ~jobs:2 (fun p ->
      let n = 500 in
      let r = Pool.map p (fun x -> x + 1) (List.init n Fun.id) in
      Alcotest.(check int) "length" n (List.length r);
      Alcotest.(check (list int)) "values" (List.init n (fun i -> i + 1)) r)

let test_clamping () =
  Alcotest.(check int) "zero -> 1" 1 (Pool.jobs (Pool.create ~jobs:0));
  Alcotest.(check int) "negative -> 1" 1 (Pool.jobs (Pool.create ~jobs:(-3)));
  (* Upper clamp, checked through the shared-pool request so no domains
     actually spawn. *)
  Pool.set_jobs 10_000;
  Alcotest.(check int) "huge clamped" Pool.max_jobs (Pool.current_jobs ());
  Pool.set_jobs 1

let test_shutdown_fallback () =
  let p = Pool.create ~jobs:4 in
  Pool.shutdown p;
  (* A map on a shut-down pool degrades to the sequential fallback. *)
  Alcotest.(check (list int)) "after shutdown" [ 1; 4; 9 ] (Pool.map p (fun x -> x * x) [ 1; 2; 3 ])

let test_shared_pool () =
  Pool.set_jobs 3;
  Alcotest.(check int) "requested jobs" 3 (Pool.current_jobs ());
  let p = Pool.get () in
  Alcotest.(check int) "shared pool size" 3 (Pool.jobs p);
  Alcotest.(check bool) "same instance" true (Pool.get () == p);
  Pool.set_jobs 2;
  Alcotest.(check bool) "resized instance" true (Pool.get () != p);
  Alcotest.(check int) "resized" 2 (Pool.jobs (Pool.get ()));
  Alcotest.(check (list int))
    "shared map" [ 0; 2; 4; 6 ]
    (Pool.map (Pool.get ()) (fun x -> 2 * x) [ 0; 1; 2; 3 ]);
  Pool.set_jobs 1

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map edge sizes" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "jobs=1 sequential fallback" `Quick test_jobs_one_fallback;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_propagation;
    Alcotest.test_case "pool survives exceptions" `Quick test_exception_then_reuse;
    Alcotest.test_case "nested maps run inline" `Quick test_nested_map;
    Alcotest.test_case "filter_map" `Quick test_filter_map;
    Alcotest.test_case "many tasks, few workers" `Quick test_many_tasks_few_workers;
    Alcotest.test_case "jobs clamping" `Quick test_clamping;
    Alcotest.test_case "shutdown falls back to sequential" `Quick test_shutdown_fallback;
    Alcotest.test_case "shared pool resize" `Quick test_shared_pool;
  ]
