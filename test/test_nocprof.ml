(* Interconnect observability: Noctrace recording and the Nocprof
   report that cross-checks it against the static Load mirror,
   Perfcore's port attribution and Critpath's interconnect segments. *)

module Nt = Elk_sim.Noctrace
module Np = Elk_analyze.Nocprof
module N = Elk_noc.Noc

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule
let mctx () = Lazy.force Tu.mesh_ctx
let msched () = Lazy.force Tu.mesh_schedule

(* Events on too, so check exercises the Critpath reconciliation. *)
let result = lazy (Elk_sim.Sim.run ~events:true ~noc:true (ctx ()) (sched ()))
let report = lazy (Np.analyze (sched ()) (Lazy.force result))

let mresult =
  lazy (Elk_sim.Sim.run ~events:true ~noc:true (mctx ()) (msched ()))

let mreport = lazy (Np.analyze (msched ()) (Lazy.force mresult))

(* Recording is opt-in and pure bookkeeping: off-mode runs carry no
   record, and the simulated timeline is identical either way. *)
let test_off_by_default () =
  let r = Elk_sim.Sim.run ~noc:false (ctx ()) (sched ()) in
  Alcotest.(check bool) "no record" true (r.Elk_sim.Sim.noc = None)

let test_zero_cost () =
  let r_off = Elk_sim.Sim.run ~noc:false (ctx ()) (sched ()) in
  let r_on = Lazy.force result in
  Tu.check_float "total identical" r_off.Elk_sim.Sim.total
    r_on.Elk_sim.Sim.total;
  Alcotest.(check bool) "record present" true (r_on.Elk_sim.Sim.noc <> None)

let test_zero_cost_mesh () =
  let r_off = Elk_sim.Sim.run ~noc:false (mctx ()) (msched ()) in
  let r_on = Lazy.force mresult in
  Tu.check_float "total identical" r_off.Elk_sim.Sim.total
    r_on.Elk_sim.Sim.total

(* The interconnect invariants, as `elk noc` enforces them, on both
   fabrics. *)
let test_check_passes () =
  match Np.check (Lazy.force report) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "check failed: %s" m

let test_check_passes_mesh () =
  match Np.check (Lazy.force mreport) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "mesh check failed: %s" m

(* Dynamic per-link volumes equal the static mirror's, link by link. *)
let test_static_mirror_exact () =
  let rep = Lazy.force mreport in
  Alcotest.(check bool) "has links" true (rep.Np.rows <> []);
  List.iter
    (fun (r : Np.link_row) ->
      Tu.check_rel r.Np.l_name ~tolerance:1e-9 r.Np.l_static r.Np.l_volume)
    rep.Np.rows

(* Recorded class totals equal the schedule-side expectations. *)
let test_class_totals () =
  let rep = Lazy.force report in
  Tu.check_rel "preload bytes" ~tolerance:1e-9 rep.Np.expect_pre
    rep.Np.pre_bytes;
  Tu.check_rel "distribute bytes" ~tolerance:1e-9 rep.Np.expect_dist
    rep.Np.dist_bytes;
  Tu.check_rel "exchange bytes" ~tolerance:1e-9 rep.Np.expect_ex
    rep.Np.ex_bytes

(* Queueing waits recomputed from the trace coincide with Perfcore's
   per-op port bucket — the acceptance criterion's 1e-6 sum check. *)
let test_port_attrib_matches_perfcore () =
  let rep = Lazy.force report in
  Array.iteri
    (fun op (recomputed, perfcore) ->
      Tu.check_close ~eps:1e-6
        (Printf.sprintf "op %d port attribution" op)
        perfcore recomputed)
    rep.Np.port_attrib

(* The hop histogram partitions the transfers: counts sum to the number
   of transfers, bytes to the total transfer volume. *)
let test_hop_histogram_partitions () =
  let t = Option.get (Lazy.force result).Elk_sim.Sim.noc in
  let rows = Nt.hop_histogram t in
  let n = List.fold_left (fun a (_, c, _) -> a + c) 0 rows in
  let b = List.fold_left (fun a (_, _, v) -> a +. v) 0. rows in
  Alcotest.(check int) "transfer count" (Nt.num_transfers t) n;
  Tu.check_rel "transfer bytes" ~tolerance:1e-9 (Nt.total_transfer_bytes t) b;
  let rec mono = function
    | (h1, _, _) :: ((h2, _, _) :: _ as rest) -> h1 < h2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by hops" true (mono rows)

(* Per-link stats are canonically ordered and tie out against the raw
   bookings. *)
let test_link_stats_consistent () =
  let t = Option.get (Lazy.force mresult).Elk_sim.Sim.noc in
  let stats = Nt.link_stats t in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        N.compare_link a.Nt.ls_link b.Nt.ls_link < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "canonical order" true (sorted stats);
  let booked =
    Array.fold_left (fun a b -> a +. b.Nt.b_bytes) 0. (Nt.bookings t)
  in
  let stat_vol = List.fold_left (fun a s -> a +. s.Nt.ls_volume) 0. stats in
  Tu.check_rel "volumes tie out" ~tolerance:1e-9 booked stat_vol;
  List.iter
    (fun s ->
      Tu.check_close ~eps:1e-6 "class split sums to volume"
        s.Nt.ls_volume
        (s.Nt.ls_preload +. s.Nt.ls_distribute +. s.Nt.ls_exchange))
    stats

(* Busy intervals are chronological and non-overlapping within a
   class. *)
let test_busy_intervals_sane () =
  let t = Option.get (Lazy.force result).Elk_sim.Sim.noc in
  List.iter
    (fun s ->
      let pre, ex = Nt.busy_intervals t ~link:s.Nt.ls_link in
      let check_ivs name ivs =
        let rec go = function
          | (s1, e1) :: (((s2, _) :: _) as rest) ->
              if e1 > s2 +. 1e-9 then
                Alcotest.failf "%s: overlap [%g,%g] then %g" name s1 e1 s2;
              go rest
          | [ (s1, e1) ] ->
              Alcotest.(check bool) "well formed" true (e1 >= s1)
          | [] -> ()
        in
        go ivs
      in
      check_ivs "preload" pre;
      check_ivs "exec" ex)
    (Nt.link_stats t)

(* Mesh topologies render a heatmap; all-to-all has no 2D layout. *)
let test_heatmap () =
  Alcotest.(check bool) "mesh has heatmap" true
    (Np.heatmap (Lazy.force mreport) <> None);
  Alcotest.(check bool) "a2a has none" true
    (Np.heatmap (Lazy.force report) = None)

(* The JSON snapshot is deterministic: two independent simulations of
   the same schedule serialize to the same bytes. *)
let test_json_deterministic () =
  let mk () =
    let r = Elk_sim.Sim.run ~events:true ~noc:true (ctx ()) (sched ()) in
    Np.to_json ~top:6 (Np.analyze (sched ()) r)
  in
  Alcotest.(check string) "byte-identical" (mk ()) (mk ())

let test_analyze_requires_record () =
  let r = Elk_sim.Sim.run ~noc:false (ctx ()) (sched ()) in
  Alcotest.check_raises "needs record"
    (Invalid_argument
       "Nocprof.analyze: simulator run has no interconnect record (run with \
        ~noc:true or ELK_SIM_NOC=1)")
    (fun () -> ignore (Np.analyze (sched ()) r))

let suite =
  [
    Alcotest.test_case "noc recording off by default" `Quick test_off_by_default;
    Alcotest.test_case "recording does not perturb the timeline" `Quick
      test_zero_cost;
    Alcotest.test_case "recording does not perturb the mesh timeline" `Quick
      test_zero_cost_mesh;
    Alcotest.test_case "nocprof check passes (all-to-all)" `Quick
      test_check_passes;
    Alcotest.test_case "nocprof check passes (mesh)" `Quick
      test_check_passes_mesh;
    Alcotest.test_case "static mirror matches dynamic volumes" `Quick
      test_static_mirror_exact;
    Alcotest.test_case "class totals match the schedule" `Quick
      test_class_totals;
    Alcotest.test_case "port attribution matches Perfcore" `Quick
      test_port_attrib_matches_perfcore;
    Alcotest.test_case "hop histogram partitions the transfers" `Quick
      test_hop_histogram_partitions;
    Alcotest.test_case "link stats canonical and consistent" `Quick
      test_link_stats_consistent;
    Alcotest.test_case "per-class busy intervals never overlap" `Quick
      test_busy_intervals_sane;
    Alcotest.test_case "heatmap only on 2D meshes" `Quick test_heatmap;
    Alcotest.test_case "nocprof JSON deterministic" `Quick
      test_json_deterministic;
    Alcotest.test_case "analyze requires an interconnect record" `Quick
      test_analyze_requires_record;
  ]
