(* Elk_analyze: dominant-resource classification and report invariants. *)

module A = Elk_analyze.Analyze
module Pc = Elk_sim.Perfcore
module Sim = Elk_sim.Sim

let resource = Alcotest.testable (Fmt.of_to_string A.resource_name) ( = )

let attrib ?(hbm = 0.) ?(ic = 0.) ?(compute = 0.) ?(port = 0.) () =
  { Pc.a_hbm = hbm; a_interconnect = ic; a_compute = compute; a_port = port }

let test_classify_synthetic () =
  (* Hand-built attributions with one clearly dominant bucket. *)
  Alcotest.check resource "clearly HBM-bound" A.Hbm
    (A.classify (attrib ~hbm:8e-3 ~ic:1e-4 ~compute:2e-4 ()));
  Alcotest.check resource "clearly interconnect-bound" A.Interconnect
    (A.classify (attrib ~ic:5e-3 ~hbm:1e-4 ~compute:1e-3 ~port:2e-4 ()));
  Alcotest.check resource "compute-bound" A.Compute
    (A.classify (attrib ~compute:9e-3 ~ic:1e-3 ()));
  Alcotest.check resource "port-bound" A.Port
    (A.classify (attrib ~port:3e-3 ~compute:1e-3 ()))

let test_classify_edge_cases () =
  (* No attributed time at all, and exact ties, both read as compute. *)
  Alcotest.check resource "all-zero defaults to compute" A.Compute
    (A.classify (attrib ()));
  Alcotest.check resource "tie with compute goes to compute" A.Compute
    (A.classify (attrib ~hbm:1e-3 ~compute:1e-3 ()))

let result =
  lazy (Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let report =
  lazy
    (let s = Lazy.force Tu.tiny_schedule in
     A.analyze ~top:4 s.Elk.Schedule.graph (Lazy.force result))

let test_report_invariants () =
  let r = Lazy.force result and rep = Lazy.force report in
  Tu.check_rel "resource totals sum to makespan" ~tolerance:1e-6 r.Sim.total
    (List.fold_left (fun acc (_, t) -> acc +. t) 0. rep.A.resource_totals);
  List.iter
    (fun (res, h) ->
      Alcotest.(check bool)
        (A.resource_name res ^ " headroom bounded")
        true
        (h >= 0. && h <= r.Sim.total +. 1e-12))
    rep.A.headroom;
  Alcotest.(check int) "mix covers every operator"
    (Array.length rep.A.ops)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 rep.A.mix);
  Alcotest.(check int) "top-k cores bounded" 4 (List.length rep.A.top_cores);
  Alcotest.(check bool) "imbalance >= 1" true (rep.A.imbalance >= 1.);
  (* top cores come out busiest-first *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> Pc.busy a.A.buckets >= Pc.busy b.A.buckets && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "cores sorted by busy" true (sorted rep.A.top_cores)

let test_exports () =
  let rep = Lazy.force report in
  let json = A.to_json rep in
  let contains n h =
    let nl = String.length n and hl = String.length h in
    let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> Alcotest.(check bool) ("json has " ^ key) true (contains key json))
    [
      "\"total\""; "\"imbalance\""; "\"resource_seconds\""; "\"headroom_latency\"";
      "\"mix\""; "\"top_cores\""; "\"ops\""; "\"bandwidth\"";
    ];
  Alcotest.(check int) "five tables" 5 (List.length (A.tables rep));
  let counters = A.chrome_counter_events ~bins:16 ~top:2 (Lazy.force result) in
  Alcotest.(check bool) "counter events present" true (counters <> []);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "is a C event" true (contains "\"ph\":\"C\"" ev))
    counters

(* Degenerate single-operator model: one tiny matmul leaves most buckets
   at exactly zero, which is where an unguarded share/headroom division
   turns into nan and leaks into the JSON as null. *)
let test_degenerate_single_op () =
  let b = Elk_model.Graph.builder ~name:"degenerate" in
  let _ =
    Elk_model.Graph.add b ~role:"lm_head"
      (Elk_tensor.Opspec.matmul ~name:"only" ~m:4 ~n:64 ~k:64 ())
  in
  let g = Elk_model.Graph.finish b in
  let ctx = Lazy.force Tu.default_ctx in
  let s = Elk.Scheduler.run ctx g in
  let r = Sim.run ~events:true ctx s in
  let rep = A.analyze g r in
  (* Jsonx.number renders non-finite floats as null, so a nan/inf that
     escaped a guard shows up as a ":null" value in the document. *)
  let no_bad what str =
    let contains n h =
      let nl = String.length n and hl = String.length h in
      let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (what ^ " free of null") false (contains ":null" str);
    Alcotest.(check bool) (what ^ " free of inf") false (contains "inf" str)
  in
  no_bad "analyze json" (A.to_json rep);
  List.iter
    (fun (res, h) ->
      Alcotest.(check bool)
        (A.resource_name res ^ " headroom finite")
        true
        (Float.is_finite h && h >= 0.))
    rep.A.headroom;
  Alcotest.(check bool) "imbalance finite" true (Float.is_finite rep.A.imbalance);
  (* The slack-aware cross-check must hold on degenerate models too. *)
  match r.Sim.events with
  | None -> Alcotest.fail "no events"
  | Some ev -> (
      let sum = Elk_sim.Critpath.extract ev in
      no_bad "critpath json" (Elk_sim.Critpath.to_json g sum);
      match A.headroom_check rep sum with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

(* Slack-aware headroom: the causal chain bounds how much of each
   resource's attributed time is actually load-bearing, so the
   slack-aware estimate can never promise more latency reduction than
   the chain spends on that resource. *)
let test_slack_headroom () =
  let r = Lazy.force (lazy (Sim.run ~events:true (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))) in
  let s = Lazy.force Tu.tiny_schedule in
  let rep = A.analyze ~top:4 s.Elk.Schedule.graph r in
  match r.Sim.events with
  | None -> Alcotest.fail "no events"
  | Some ev ->
      let sum = Elk_sim.Critpath.extract ev in
      (match A.headroom_check rep sum with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      List.iter
        (fun (res, attrib_h, slack_h) ->
          Alcotest.(check bool)
            (A.resource_name res ^ " slack-aware headroom bounded")
            true
            (Float.is_finite slack_h && slack_h >= 0.
            && slack_h <= rep.A.total +. 1e-12
            && attrib_h >= 0.))
        (A.slack_headroom rep sum)

let suite =
  [
    ("classify: synthetic dominant buckets", `Quick, test_classify_synthetic);
    ("classify: ties and zeros", `Quick, test_classify_edge_cases);
    ("report invariants on a real run", `Quick, test_report_invariants);
    ("json/table/counter exports", `Quick, test_exports);
    ("degenerate single-op model stays finite", `Quick, test_degenerate_single_op);
    ("slack-aware headroom cross-check", `Quick, test_slack_headroom);
  ]
