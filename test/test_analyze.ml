(* Elk_analyze: dominant-resource classification and report invariants. *)

module A = Elk_analyze.Analyze
module Pc = Elk_sim.Perfcore
module Sim = Elk_sim.Sim

let resource = Alcotest.testable (Fmt.of_to_string A.resource_name) ( = )

let attrib ?(hbm = 0.) ?(ic = 0.) ?(compute = 0.) ?(port = 0.) () =
  { Pc.a_hbm = hbm; a_interconnect = ic; a_compute = compute; a_port = port }

let test_classify_synthetic () =
  (* Hand-built attributions with one clearly dominant bucket. *)
  Alcotest.check resource "clearly HBM-bound" A.Hbm
    (A.classify (attrib ~hbm:8e-3 ~ic:1e-4 ~compute:2e-4 ()));
  Alcotest.check resource "clearly interconnect-bound" A.Interconnect
    (A.classify (attrib ~ic:5e-3 ~hbm:1e-4 ~compute:1e-3 ~port:2e-4 ()));
  Alcotest.check resource "compute-bound" A.Compute
    (A.classify (attrib ~compute:9e-3 ~ic:1e-3 ()));
  Alcotest.check resource "port-bound" A.Port
    (A.classify (attrib ~port:3e-3 ~compute:1e-3 ()))

let test_classify_edge_cases () =
  (* No attributed time at all, and exact ties, both read as compute. *)
  Alcotest.check resource "all-zero defaults to compute" A.Compute
    (A.classify (attrib ()));
  Alcotest.check resource "tie with compute goes to compute" A.Compute
    (A.classify (attrib ~hbm:1e-3 ~compute:1e-3 ()))

let result =
  lazy (Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let report =
  lazy
    (let s = Lazy.force Tu.tiny_schedule in
     A.analyze ~top:4 s.Elk.Schedule.graph (Lazy.force result))

let test_report_invariants () =
  let r = Lazy.force result and rep = Lazy.force report in
  Tu.check_rel "resource totals sum to makespan" ~tolerance:1e-6 r.Sim.total
    (List.fold_left (fun acc (_, t) -> acc +. t) 0. rep.A.resource_totals);
  List.iter
    (fun (res, h) ->
      Alcotest.(check bool)
        (A.resource_name res ^ " headroom bounded")
        true
        (h >= 0. && h <= r.Sim.total +. 1e-12))
    rep.A.headroom;
  Alcotest.(check int) "mix covers every operator"
    (Array.length rep.A.ops)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 rep.A.mix);
  Alcotest.(check int) "top-k cores bounded" 4 (List.length rep.A.top_cores);
  Alcotest.(check bool) "imbalance >= 1" true (rep.A.imbalance >= 1.);
  (* top cores come out busiest-first *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> Pc.busy a.A.buckets >= Pc.busy b.A.buckets && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "cores sorted by busy" true (sorted rep.A.top_cores)

let test_exports () =
  let rep = Lazy.force report in
  let json = A.to_json rep in
  let contains n h =
    let nl = String.length n and hl = String.length h in
    let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> Alcotest.(check bool) ("json has " ^ key) true (contains key json))
    [
      "\"total\""; "\"imbalance\""; "\"resource_seconds\""; "\"headroom_latency\"";
      "\"mix\""; "\"top_cores\""; "\"ops\""; "\"bandwidth\"";
    ];
  Alcotest.(check int) "five tables" 5 (List.length (A.tables rep));
  let counters = A.chrome_counter_events ~bins:16 ~top:2 (Lazy.force result) in
  Alcotest.(check bool) "counter events present" true (counters <> []);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "is a C event" true (contains "\"ph\":\"C\"" ev))
    counters

let suite =
  [
    ("classify: synthetic dominant buckets", `Quick, test_classify_synthetic);
    ("classify: ties and zeros", `Quick, test_classify_edge_cases);
    ("report invariants on a real run", `Quick, test_report_invariants);
    ("json/table/counter exports", `Quick, test_exports);
  ]
