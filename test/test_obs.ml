(* Elk_obs: metrics registry, span tracer, exporters, and the shared JSON
   escaping used by the Chrome-trace writers. *)

module Obs = Elk_obs

(* Every test runs with a clean, enabled collector and restores the
   disabled default afterwards so later suites keep the no-op fast path. *)
let with_obs f () =
  Obs.Control.enable ();
  Obs.Metrics.reset ();
  Obs.Span.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.disable ();
      Obs.Metrics.reset ();
      Obs.Span.clear ())
    f

let test_escape () =
  Alcotest.(check string)
    "quotes, backslashes, named escapes" "a\\\"b\\\\c\\nd\\te"
    (Obs.Jsonx.escape "a\"b\\c\nd\te");
  Alcotest.(check string) "control chars" "\\u0001\\u001f" (Obs.Jsonx.escape "\x01\x1f");
  Alcotest.(check string) "quote wraps" "\"x\"" (Obs.Jsonx.quote "x");
  Alcotest.(check string) "integral number" "42" (Obs.Jsonx.number 42.);
  Alcotest.(check string) "non-finite is null" "null" (Obs.Jsonx.number Float.nan)

let test_counters_and_gauges () =
  Obs.Metrics.incr "c" ~by:2.;
  Obs.Metrics.incr "c";
  Obs.Metrics.set "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "counter" (Some 3.) (Obs.Metrics.counter_value "c");
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 2.5) (Obs.Metrics.gauge_value "g");
  Alcotest.(check (option (float 1e-9))) "absent" None (Obs.Metrics.counter_value "nope")

let test_histogram_percentiles () =
  for i = 1 to 1000 do
    Obs.Metrics.observe "lat" (float_of_int i /. 1000.)
  done;
  let count, sum, mn, mx = Option.get (Obs.Metrics.histogram_stats "lat") in
  Alcotest.(check int) "count" 1000 count;
  Alcotest.(check (float 1e-6)) "sum" 500.5 sum;
  Alcotest.(check (float 1e-9)) "min" 0.001 mn;
  Alcotest.(check (float 1e-9)) "max" 1.0 mx;
  let p q = Option.get (Obs.Metrics.percentile "lat" q) in
  (* Power-of-two buckets: estimates are within one bucket (factor 2). *)
  Alcotest.(check bool) "p50 near 0.5" true (p 50. > 0.25 && p 50. < 1.0);
  Alcotest.(check bool) "p99 near 0.99" true (p 99. > 0.5 && p 99. <= 1.0);
  Alcotest.(check bool) "monotone" true (p 10. <= p 50. && p 50. <= p 90. && p 90. <= p 99.);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 0.001 (p 0.);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 1.0 (p 100.)

let test_empty_histogram_guards () =
  (* An existing but empty histogram answers 0 — never nan, never an
     exception — while absent names keep answering None. *)
  Obs.Metrics.observe "e" 0.25;
  Obs.Metrics.reset_histogram "e";
  Alcotest.(check (option (float 0.))) "p50 of empty" (Some 0.)
    (Obs.Metrics.percentile "e" 50.);
  Alcotest.(check (option (float 0.))) "p99.9 of empty" (Some 0.)
    (Obs.Metrics.percentile "e" 99.9);
  (match Obs.Metrics.histogram_stats "e" with
  | Some (count, sum, mn, mx) ->
      Alcotest.(check int) "count" 0 count;
      Alcotest.(check (float 0.)) "sum" 0. sum;
      Alcotest.(check (float 0.)) "min" 0. mn;
      Alcotest.(check (float 0.)) "max" 0. mx
  | None -> Alcotest.fail "stats must exist for an empty histogram");
  Alcotest.(check (option (float 0.))) "absent stays None" None
    (Obs.Metrics.percentile "nope" 50.)

let test_histogram_reset_reuse () =
  (* reset_histogram forgets the previous run completely, so percentile
     queries after a second run describe that run alone. *)
  Obs.Metrics.observe "r" 1.0;
  Obs.Metrics.observe "r" 2.0;
  Obs.Metrics.reset_histogram "r";
  Obs.Metrics.observe "r" 4.0;
  let count, sum, mn, mx = Option.get (Obs.Metrics.histogram_stats "r") in
  Alcotest.(check int) "count sees only the new run" 1 count;
  Alcotest.(check (float 1e-9)) "sum sees only the new run" 4.0 sum;
  Alcotest.(check (float 1e-9)) "min is the new observation" 4.0 mn;
  Alcotest.(check (float 1e-9)) "max is the new observation" 4.0 mx;
  Alcotest.(check (float 1e-9)) "p100 clamps to the new max" 4.0
    (Option.get (Obs.Metrics.percentile "r" 100.));
  (* Resetting a name that is not a histogram leaves it untouched. *)
  Obs.Metrics.incr "rc";
  Obs.Metrics.reset_histogram "rc";
  Alcotest.(check (option (float 0.))) "counter untouched" (Some 1.)
    (Obs.Metrics.counter_value "rc");
  Obs.Metrics.reset_histogram "never-registered"

let test_span_nesting () =
  let v =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner1" (fun () -> ());
        Obs.Span.with_span "inner2" ~attrs:[ ("k", "v") ] (fun () -> ());
        17)
  in
  Alcotest.(check int) "value returned" 17 v;
  let spans = Obs.Span.spans () in
  Alcotest.(check (list string)) "completion order"
    [ "inner1"; "inner2"; "outer" ]
    (List.map (fun s -> s.Obs.Span.name) spans);
  let by_name n = List.find (fun s -> s.Obs.Span.name = n) spans in
  let outer = by_name "outer" and i1 = by_name "inner1" and i2 = by_name "inner2" in
  Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
  Alcotest.(check int) "inner depth" 1 i1.Obs.Span.depth;
  Alcotest.(check bool) "inner1 contained" true
    (outer.Obs.Span.start <= i1.Obs.Span.start
    && i1.Obs.Span.start +. i1.Obs.Span.dur
       <= outer.Obs.Span.start +. outer.Obs.Span.dur +. 1e-9);
  Alcotest.(check bool) "inner1 before inner2" true
    (i1.Obs.Span.start <= i2.Obs.Span.start);
  (* totals: ordered by first start, so outer leads. *)
  (match Obs.Span.totals () with
  | (n0, c0, _) :: _ ->
      Alcotest.(check string) "totals leads with outer" "outer" n0;
      Alcotest.(check int) "outer called once" 1 c0
  | [] -> Alcotest.fail "empty totals");
  (* span recorded even when the thunk raises *)
  (try Obs.Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "raising span recorded" 4 (Obs.Span.count ())

let test_prometheus_exporter () =
  Obs.Metrics.incr "elk_test_total" ~by:3. ~help:"a counter";
  Obs.Metrics.set "elk_gauge" 2.5;
  Obs.Metrics.observe "elk_lat" 0.1;
  Obs.Metrics.incr "bad name!";
  let out = Obs.Metrics.to_prometheus () in
  let contains affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  let check_has needle = Alcotest.(check bool) needle true (contains needle out) in
  check_has "# HELP elk_test_total a counter";
  check_has "# TYPE elk_test_total counter";
  check_has "elk_test_total 3";
  check_has "# TYPE elk_gauge gauge";
  check_has "elk_gauge 2.5";
  check_has "# TYPE elk_lat histogram";
  check_has "elk_lat_bucket{le=\"+Inf\"} 1";
  check_has "elk_lat_sum 0.1";
  check_has "elk_lat_count 1";
  (* sanitized name *)
  check_has "bad_name_ 1";
  Alcotest.(check bool) "no raw bad name" false (contains "bad name!" out)

let test_json_exporter () =
  Obs.Metrics.incr "c\"q" ~by:1.;
  Obs.Metrics.observe "h" 0.25;
  let out = Obs.Metrics.to_json () in
  let contains affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped counter name" true (contains "\"c\\\"q\":1" out);
  Alcotest.(check bool) "histogram stats" true (contains "\"count\":1" out);
  Alcotest.(check bool) "has sections" true
    (contains "\"counters\":{" out && contains "\"gauges\":{" out
    && contains "\"histograms\":{" out);
  let balance =
    String.fold_left
      (fun a c -> if c = '{' then a + 1 else if c = '}' then a - 1 else a)
      0 out
  in
  Alcotest.(check int) "braces balanced" 0 balance

let test_disabled_noop () =
  Obs.Control.disable ();
  Obs.Metrics.incr "nc";
  Obs.Metrics.set "ng" 1.;
  Obs.Metrics.observe "nh" 1.;
  let v = Obs.Span.with_span "ns" (fun () -> 5) in
  Alcotest.(check int) "with_span passes through" 5 v;
  Alcotest.(check int) "no spans recorded" 0 (Obs.Span.count ());
  Alcotest.(check (option (float 0.))) "no counter" None (Obs.Metrics.counter_value "nc");
  Alcotest.(check (option (float 0.))) "no gauge" None (Obs.Metrics.gauge_value "ng");
  Alcotest.(check (option (float 0.))) "no histogram" None
    (Obs.Metrics.percentile "nh" 50.);
  Obs.Control.enable ()

(* Trace.event_count must agree with the events actually serialized. *)
let test_trace_event_count () =
  let r = Elk_sim.Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule) in
  let graph = (Lazy.force Tu.tiny_schedule).Elk.Schedule.graph in
  let json = Elk_sim.Trace.to_chrome_json graph r in
  let needle = "\"ph\":\"X\"" in
  let n = String.length needle in
  let occurrences = ref 0 in
  for i = 0 to String.length json - n do
    if String.sub json i n = needle then incr occurrences
  done;
  Alcotest.(check int) "event_count matches serialized X events"
    (Elk_sim.Trace.event_count r) !occurrences;
  Alcotest.(check int) "chrome_events length"
    (Elk_sim.Trace.event_count r)
    (List.length (Elk_sim.Trace.chrome_events graph r))

let test_logger_levels () =
  let saved = Obs.Logger.level () in
  Obs.Logger.set_level (Some Obs.Logger.Warn);
  Alcotest.(check bool) "warn enabled" true (Obs.Logger.enabled Obs.Logger.Warn);
  Alcotest.(check bool) "error enabled" true (Obs.Logger.enabled Obs.Logger.Error);
  Alcotest.(check bool) "info filtered" false (Obs.Logger.enabled Obs.Logger.Info);
  Obs.Logger.set_level None;
  Alcotest.(check bool) "disabled" false (Obs.Logger.enabled Obs.Logger.Error);
  Alcotest.(check (option string)) "parse" (Some "debug")
    (Option.map Obs.Logger.level_name (Obs.Logger.level_of_string "DEBUG"));
  Alcotest.(check (option string)) "parse warning alias" (Some "warn")
    (Option.map Obs.Logger.level_name (Obs.Logger.level_of_string "warning"));
  Alcotest.(check bool) "reject junk" true (Obs.Logger.level_of_string "loud" = None);
  Obs.Logger.set_level saved

let test_compile_records_phases () =
  let ctx = Lazy.force Tu.default_ctx in
  let pod = Lazy.force Tu.default_pod in
  let options = { Elk.Compile.default_options with max_orders = 2 } in
  let _c = Elk.Compile.compile ~options ctx ~pod (Lazy.force Tu.tiny_llama) in
  let totals = Obs.Span.totals () in
  let phase n = List.exists (fun (name, _, _) -> name = n) totals in
  List.iter
    (fun n -> Alcotest.(check bool) ("phase " ^ n) true (phase n))
    [ "compile"; "shard"; "order-gen"; "schedule"; "allocate"; "timeline-eval" ];
  Alcotest.(check bool) "orders counter set" true
    (Obs.Metrics.counter_value "elk_compile_orders_tried_total" <> None);
  Alcotest.(check bool) "scheduler runs counted" true
    (Obs.Metrics.counter_value "elk_scheduler_runs_total" <> None);
  (* compiler spans export as chrome events alongside a thread label *)
  match Obs.Span.chrome_events () with
  | [] -> Alcotest.fail "no chrome events"
  | meta :: evs ->
      Alcotest.(check bool) "meta labels track" true
        (String.length meta > 0 && List.length evs = List.length (Obs.Span.spans ()))

(* The Jsonx parser must read back everything the emitters write, and
   reject what they never write. *)
let test_jsonx_parser () =
  let module J = Obs.Jsonx in
  let ok s = match J.parse s with Ok v -> v | Error m -> Alcotest.fail m in
  let bad s =
    match J.parse s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error _ -> ()
  in
  (match ok "{\"a\":[1,2.5e-3,null],\"b\":{\"c\":true}}" with
  | J.Obj _ as v ->
      let nums =
        match J.member "a" v with
        | Some a -> List.map J.to_float (J.to_list a)
        | None -> []
      in
      (match nums with
      | [ Some x; Some y; Some z ] ->
          Alcotest.(check (float 0.)) "int" 1. x;
          Alcotest.(check (float 1e-12)) "exponent" 2.5e-3 y;
          Alcotest.(check bool) "null reads as nan" true (Float.is_nan z)
      | _ -> Alcotest.fail "array shape");
      Alcotest.(check bool) "nested member" true
        (Option.bind (J.member "b" v) (J.member "c") = Some (J.Bool true))
  | _ -> Alcotest.fail "not an object");
  (* escapes round-trip through the emitter's own quoting *)
  let tricky = "a\"b\\c\nd\te\r \x01 é" in
  (match ok ("[" ^ J.quote tricky ^ "]") with
  | J.Arr [ s ] ->
      Alcotest.(check (option string)) "quote round-trips" (Some tricky)
        (J.to_str s)
  | _ -> Alcotest.fail "quote round-trip shape");
  (match ok "\"\\u00e9\\u0041\"" with
  | J.Str s -> Alcotest.(check string) "unicode escapes" "\xc3\xa9A" s
  | _ -> Alcotest.fail "unicode shape");
  (* a real exporter document parses *)
  let r = Elk_sim.Sim.run ~events:true (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule) in
  (match r.Elk_sim.Sim.events with
  | None -> Alcotest.fail "no events"
  | Some ev ->
      let graph = (Lazy.force Tu.tiny_schedule).Elk.Schedule.graph in
      let sum = Elk_sim.Critpath.extract ev in
      (match J.parse (Elk_sim.Critpath.to_json graph sum) with
      | Error m -> Alcotest.fail ("critpath json: " ^ m)
      | Ok v ->
          Alcotest.(check (option (float 1e-12))) "total member"
            (Some sum.Elk_sim.Critpath.total)
            (Option.bind (J.member "total" v) J.to_float)));
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ];
  (* one document per input: a second top-level value is trailing
     garbage, never a silent parse of the first *)
  List.iter bad [ "{} {}"; "{\"a\":1}{}"; "[1][2]"; "null null"; "true,false" ];
  (match J.parse "{} {}" with
  | Error m ->
      Alcotest.(check bool) "error names the offset" true
        (List.exists
           (fun w -> w = "offset")
           (String.split_on_char ' ' m))
  | Ok _ -> Alcotest.fail "accepted: {} {}");
  (* trailing whitespace is not garbage *)
  ignore (ok "  {\"a\":1}  \n\t ")

let suite =
  [
    ("jsonx escaping", `Quick, with_obs test_escape);
    ("jsonx parser", `Quick, with_obs test_jsonx_parser);
    ("counters and gauges", `Quick, with_obs test_counters_and_gauges);
    ("histogram percentiles", `Quick, with_obs test_histogram_percentiles);
    ("empty histogram guards", `Quick, with_obs test_empty_histogram_guards);
    ("histogram reset for reuse", `Quick, with_obs test_histogram_reset_reuse);
    ("span nesting and ordering", `Quick, with_obs test_span_nesting);
    ("prometheus exporter", `Quick, with_obs test_prometheus_exporter);
    ("json exporter", `Quick, with_obs test_json_exporter);
    ("disabled is a no-op", `Quick, with_obs test_disabled_noop);
    ("trace event count consistency", `Quick, with_obs test_trace_event_count);
    ("logger level filtering", `Quick, with_obs test_logger_levels);
    ("compile records phase spans", `Quick, with_obs test_compile_records_phases);
  ]
