open Elk_noc
open Elk_arch

let a2a () = Noc.create (Arch.Presets.scaled_chip ())
let mesh () = Noc.create (Arch.Presets.scaled_chip ~topology_kind:`Mesh ())

let test_create_rejects_invalid () =
  let bad = { (Arch.Presets.scaled_chip ()) with Arch.cores = -1 } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Noc.create bad);
       false
     with Invalid_argument _ -> true)

let test_validate_node () =
  let t = a2a () in
  Alcotest.(check bool) "core ok" true (Noc.validate_node t (Noc.Core 0));
  Alcotest.(check bool) "core oob" false (Noc.validate_node t (Noc.Core 64));
  Alcotest.(check bool) "hbm ok" true (Noc.validate_node t (Noc.Hbm 3));
  Alcotest.(check bool) "hbm oob" false (Noc.validate_node t (Noc.Hbm 4))

let test_a2a_route () =
  let t = a2a () in
  let r = Noc.route t ~src:(Noc.Core 3) ~dst:(Noc.Core 11) in
  Alcotest.(check int) "two ports" 2 (List.length r);
  Alcotest.(check bool) "out then in" true
    (r = [ Noc.Port_out (Noc.Core 3); Noc.Port_in (Noc.Core 11) ])

let test_self_route_empty () =
  let t = a2a () in
  Alcotest.(check int) "empty" 0 (List.length (Noc.route t ~src:(Noc.Core 5) ~dst:(Noc.Core 5)));
  Tu.check_float "zero time" 0. (Noc.transfer_time t ~src:(Noc.Core 5) ~dst:(Noc.Core 5) ~bytes:100.)

let test_route_to_hbm_rejected () =
  let t = a2a () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Noc.route t ~src:(Noc.Core 0) ~dst:(Noc.Hbm 0));
       false
     with Invalid_argument _ -> true)

let test_mesh_route_xy () =
  let t = mesh () in
  (* 8x8 mesh: core 0 = (0,0), core 27 = (3,3): 3 column hops + 3 row hops. *)
  let r = Noc.route t ~src:(Noc.Core 0) ~dst:(Noc.Core 27) in
  Alcotest.(check int) "manhattan hops" 6 (List.length r);
  List.iter
    (fun l -> match l with Noc.Edge _ -> () | _ -> Alcotest.fail "expected mesh edges")
    r

let test_mesh_route_adjacent () =
  let t = mesh () in
  Alcotest.(check int) "neighbor 1 hop" 1
    (List.length (Noc.route t ~src:(Noc.Core 0) ~dst:(Noc.Core 1)))

let test_mesh_hbm_route () =
  let t = mesh () in
  let r = Noc.route t ~src:(Noc.Hbm 0) ~dst:(Noc.Core 63) in
  (match r with
  | Noc.Port_out (Noc.Hbm 0) :: Noc.Hbm_edge _ :: _ -> ()
  | _ -> Alcotest.fail "expected controller port then entry edge");
  Alcotest.(check bool) "reaches far corner" true (List.length r >= 3)

let test_a2a_hbm_bandwidths () =
  let t = a2a () in
  let chip = Noc.chip t in
  let per_ctrl = chip.Arch.hbm_bandwidth /. float_of_int chip.Arch.hbm_controllers in
  Tu.check_float "ctrl port at per-controller rate" per_ctrl
    (Noc.link_bandwidth t (Noc.Port_out (Noc.Hbm 0)));
  Tu.check_float "core port at link rate" chip.Arch.intercore_link.Arch.bandwidth
    (Noc.link_bandwidth t (Noc.Port_in (Noc.Core 0)))

let test_transfer_time_formula () =
  let t = a2a () in
  let chip = Noc.chip t in
  let bytes = 1e6 in
  let expect =
    (2. *. chip.Arch.intercore_link.Arch.latency)
    +. (bytes /. chip.Arch.intercore_link.Arch.bandwidth)
  in
  Tu.check_rel "latency + bytes/bw" ~tolerance:1e-9 expect
    (Noc.transfer_time t ~src:(Noc.Core 0) ~dst:(Noc.Core 1) ~bytes)

let test_mesh_farther_is_slower () =
  let t = mesh () in
  let near = Noc.transfer_time t ~src:(Noc.Core 0) ~dst:(Noc.Core 1) ~bytes:1e3 in
  let far = Noc.transfer_time t ~src:(Noc.Core 0) ~dst:(Noc.Core 63) ~bytes:1e3 in
  Alcotest.(check bool) "farther slower" true (far > near)

let test_hbm_ctrl_striping () =
  let t = a2a () in
  Alcotest.(check bool) "striped" true
    (Noc.hbm_ctrl_for_core t 0 = Noc.Hbm 0
    && Noc.hbm_ctrl_for_core t 1 = Noc.Hbm 1
    && Noc.hbm_ctrl_for_core t 4 = Noc.Hbm 0)

let test_load_accounting () =
  let t = a2a () in
  let l = Noc.Load.create t in
  Noc.Load.add l ~src:(Noc.Core 0) ~dst:(Noc.Core 1) ~bytes:100.;
  Noc.Load.add l ~src:(Noc.Core 2) ~dst:(Noc.Core 1) ~bytes:50.;
  Tu.check_float "total once per transfer" 150. (Noc.Load.total_volume l);
  Tu.check_float "receiver port accumulates" 150.
    (Noc.Load.volume_on l (Noc.Port_in (Noc.Core 1)));
  Tu.check_float "sender port" 100. (Noc.Load.volume_on l (Noc.Port_out (Noc.Core 0)))

let test_load_makespan_bottleneck () =
  let t = a2a () in
  let chip = Noc.chip t in
  let bw = chip.Arch.intercore_link.Arch.bandwidth in
  let l = Noc.Load.create t in
  (* Two senders into one receiver: the receiver port serializes. *)
  Noc.Load.add l ~src:(Noc.Core 0) ~dst:(Noc.Core 2) ~bytes:1e6;
  Noc.Load.add l ~src:(Noc.Core 1) ~dst:(Noc.Core 2) ~bytes:1e6;
  Tu.check_rel "makespan ~ 2MB over one port" ~tolerance:0.01 (2e6 /. bw)
    (Noc.Load.makespan l);
  match Noc.Load.busiest l with
  | Some (Noc.Port_in (Noc.Core 2), time) -> Tu.check_rel "busiest" ~tolerance:1e-9 (2e6 /. bw) time
  | _ -> Alcotest.fail "expected receiver port to be busiest"

let test_load_empty () =
  let t = a2a () in
  let l = Noc.Load.create t in
  Tu.check_float "makespan 0" 0. (Noc.Load.makespan l);
  Alcotest.(check bool) "no busiest" true (Noc.Load.busiest l = None)

let test_broadcast_time () =
  let t = a2a () in
  let chip = Noc.chip t in
  let bw = chip.Arch.intercore_link.Arch.bandwidth in
  (* One core sending 1KB to 10 others serializes on its outbound port. *)
  let dsts = List.init 10 (fun i -> i + 1) in
  let time = Noc.broadcast_time t ~src:(Noc.Core 0) ~dsts ~bytes_per_dst:1e3 in
  let latency = 2. *. chip.Arch.intercore_link.Arch.latency in
  Tu.check_rel "outbound serialized" ~tolerance:1e-6 ((10. *. 1e3 /. bw) +. latency) time

let test_hbm_broadcast_parallel () =
  let t = a2a () in
  let chip = Noc.chip t in
  (* A controller broadcasting to all cores is limited by per-core inbound
     ports (parallel), not by its own port (much faster). *)
  let dsts = List.init chip.Arch.cores (fun i -> i) in
  let per_core = 1e5 in
  let time = Noc.broadcast_time t ~src:(Noc.Hbm 0) ~dsts ~bytes_per_dst:per_core in
  let inbound = per_core /. chip.Arch.intercore_link.Arch.bandwidth in
  let ctrl =
    float_of_int chip.Arch.cores *. per_core
    /. (chip.Arch.hbm_bandwidth /. float_of_int chip.Arch.hbm_controllers)
  in
  Tu.check_rel "max(inbound, ctrl)" ~tolerance:0.15 (Float.max inbound ctrl) time

let test_load_fold_canonical () =
  let t = a2a () in
  let l = Noc.Load.create t in
  Noc.Load.add l ~src:(Noc.Core 5) ~dst:(Noc.Core 1) ~bytes:10.;
  Noc.Load.add l ~src:(Noc.Core 0) ~dst:(Noc.Core 3) ~bytes:20.;
  Noc.Load.add l ~src:(Noc.Hbm 0) ~dst:(Noc.Core 2) ~bytes:30.;
  let links = List.rev (Noc.Load.fold l (fun acc link _ -> link :: acc) []) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Noc.compare_link a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "canonically sorted" true (sorted links);
  Alcotest.(check int) "each touched link appears once" 6 (List.length links);
  Tu.check_float "per-link volume sum (both ports per transfer)" 120.
    (Noc.Load.fold l (fun acc _ v -> acc +. v) 0.);
  (* busiest goes through the same fold: the 30-byte HBM delivery rides
     the faster controller port, so the hottest core port wins. *)
  match Noc.Load.busiest l with
  | Some (Noc.Port_in (Noc.Core 2), _) -> ()
  | _ -> Alcotest.fail "expected port_in(core 2) as busiest"

let test_mean_utilization_zero_horizon () =
  let t = a2a () in
  let l = Noc.Load.create t in
  Noc.Load.add l ~src:(Noc.Core 0) ~dst:(Noc.Core 1) ~bytes:1e6;
  Tu.check_float "zero horizon" 0. (Noc.Load.mean_utilization l ~horizon:0.);
  Tu.check_float "negative horizon" 0.
    (Noc.Load.mean_utilization l ~horizon:(-1.))

let test_mesh_utilization_nonzero () =
  let t = mesh () in
  let l = Noc.Load.create t in
  Noc.Load.add l ~src:(Noc.Core 0) ~dst:(Noc.Core 7) ~bytes:1e6;
  Alcotest.(check bool) "mean util > 0" true (Noc.Load.mean_utilization l ~horizon:1e-3 > 0.)

let qcheck_mesh_route_connects =
  Tu.qtest ~count:80 "noc: mesh XY routes have manhattan length"
    QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
    (fun (s, d) ->
      let t = mesh () in
      let hops = Noc.hops t ~src:(Noc.Core s) ~dst:(Noc.Core d) in
      let manhattan = abs ((s / 8) - (d / 8)) + abs ((s mod 8) - (d mod 8)) in
      hops = manhattan)

let qcheck_transfer_time_monotone =
  Tu.qtest ~count:60 "noc: transfer time grows with volume"
    QCheck2.Gen.(pair (float_range 1. 1e6) (float_range 1. 1e6))
    (fun (b1, b2) ->
      let t = a2a () in
      let f b = Noc.transfer_time t ~src:(Noc.Core 0) ~dst:(Noc.Core 1) ~bytes:b in
      if b1 <= b2 then f b1 <= f b2 else f b2 <= f b1)

let qcheck_transfer_time_monotone_mesh =
  Tu.qtest ~count:60 "noc: mesh transfer time grows with volume"
    QCheck2.Gen.(triple (float_range 1. 1e6) (float_range 1. 1e6)
                   (pair (int_bound 63) (int_bound 63)))
    (fun (b1, b2, (s, d)) ->
      let t = mesh () in
      let f b = Noc.transfer_time t ~src:(Noc.Core s) ~dst:(Noc.Core d) ~bytes:b in
      if b1 <= b2 then f b1 <= f b2 else f b2 <= f b1)

let qcheck_hops_equals_route_length =
  Tu.qtest ~count:80 "noc: hops equals route length on both topologies"
    QCheck2.Gen.(triple bool (int_bound 63) (int_bound 63))
    (fun (use_mesh, s, d) ->
      let t = if use_mesh then mesh () else a2a () in
      let agrees src dst =
        Noc.hops t ~src ~dst = List.length (Noc.route t ~src ~dst)
      in
      agrees (Noc.Core s) (Noc.Core d) && agrees (Noc.Hbm (s mod 4)) (Noc.Core d))

(* XY routes are hop-minimal *and* valid: a chain of unit-distance mesh
   edges from src to dst. *)
let qcheck_mesh_route_valid_path =
  Tu.qtest ~count:80 "noc: mesh XY route is a connected edge path"
    QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
    (fun (s, d) ->
      let t = mesh () in
      let r = Noc.route t ~src:(Noc.Core s) ~dst:(Noc.Core d) in
      let adjacent a b =
        abs ((a / 8) - (b / 8)) + abs ((a mod 8) - (b mod 8)) = 1
      in
      let ok, last =
        List.fold_left
          (fun (ok, cur) l ->
            match l with
            | Noc.Edge { from_core; to_core } ->
                (ok && from_core = cur && adjacent from_core to_core, to_core)
            | _ -> (false, cur))
          (true, s) r
      in
      ok && last = d && (s <> d || r = []))


(* ---- GPU-style clustered fabric ----------------------------------- *)

let clustered () = Noc.create (Arch.Presets.gpu_like_chip ~cores:64 ~clusters:8 ())

let test_cluster_intra_route () =
  let t = clustered () in
  (* Cores 0 and 7 share cluster 0: direct ports, no L2. *)
  let r = Noc.route t ~src:(Noc.Core 0) ~dst:(Noc.Core 7) in
  Alcotest.(check bool) "no L2" true (not (List.mem Noc.L2_fabric r));
  Alcotest.(check int) "two ports" 2 (List.length r)

let test_cluster_inter_route () =
  let t = clustered () in
  (* Cores 0 and 8 are in different clusters: traffic crosses the L2. *)
  let r = Noc.route t ~src:(Noc.Core 0) ~dst:(Noc.Core 8) in
  Alcotest.(check bool) "via L2" true (List.mem Noc.L2_fabric r)

let test_cluster_hbm_via_l2 () =
  let t = clustered () in
  let r = Noc.route t ~src:(Noc.Hbm 0) ~dst:(Noc.Core 3) in
  Alcotest.(check bool) "HBM behind L2" true (List.mem Noc.L2_fabric r)

let test_cluster_l2_bandwidth () =
  let chip = Arch.Presets.gpu_like_chip () in
  let t = Noc.create chip in
  Tu.check_float "L2 bw = HBM bw (paper 7 regime)" chip.Arch.hbm_bandwidth
    (Noc.link_bandwidth t Noc.L2_fabric)

let test_cluster_l2_serializes () =
  let t = clustered () in
  let l = Noc.Load.create t in
  (* Many inter-cluster transfers pile onto the single L2 fabric. *)
  for c = 0 to 7 do
    Noc.Load.add l ~src:(Noc.Core c) ~dst:(Noc.Core (c + 8)) ~bytes:1e6
  done;
  Tu.check_float "L2 carries all" 8e6 (Noc.Load.volume_on l Noc.L2_fabric)

let suite =
  [
    ("noc: rejects invalid chip", `Quick, test_create_rejects_invalid);
    ("noc: node validation", `Quick, test_validate_node);
    ("noc: all-to-all route", `Quick, test_a2a_route);
    ("noc: self route", `Quick, test_self_route_empty);
    ("noc: core->hbm rejected", `Quick, test_route_to_hbm_rejected);
    ("noc: mesh XY routing", `Quick, test_mesh_route_xy);
    ("noc: mesh adjacency", `Quick, test_mesh_route_adjacent);
    ("noc: mesh HBM entry", `Quick, test_mesh_hbm_route);
    ("noc: link bandwidths", `Quick, test_a2a_hbm_bandwidths);
    ("noc: transfer time formula", `Quick, test_transfer_time_formula);
    ("noc: mesh distance", `Quick, test_mesh_farther_is_slower);
    ("noc: controller striping", `Quick, test_hbm_ctrl_striping);
    ("noc: load accounting", `Quick, test_load_accounting);
    ("noc: makespan bottleneck", `Quick, test_load_makespan_bottleneck);
    ("noc: empty load", `Quick, test_load_empty);
    ("noc: broadcast from core", `Quick, test_broadcast_time);
    ("noc: HBM broadcast parallel", `Quick, test_hbm_broadcast_parallel);
    ("noc: load fold canonical order", `Quick, test_load_fold_canonical);
    ("noc: mean utilization guards empty horizon", `Quick,
     test_mean_utilization_zero_horizon);
    ("noc: mesh utilization", `Quick, test_mesh_utilization_nonzero);
    ("noc: cluster intra route", `Quick, test_cluster_intra_route);
    ("noc: cluster inter route", `Quick, test_cluster_inter_route);
    ("noc: cluster HBM via L2", `Quick, test_cluster_hbm_via_l2);
    ("noc: cluster L2 bandwidth", `Quick, test_cluster_l2_bandwidth);
    ("noc: cluster L2 serializes", `Quick, test_cluster_l2_serializes);
    qcheck_mesh_route_connects;
    qcheck_transfer_time_monotone;
    qcheck_transfer_time_monotone_mesh;
    qcheck_hops_equals_route_length;
    qcheck_mesh_route_valid_path;
  ]
